package truth

import (
	"math"

	"repro/internal/stats"
)

// emDefaults bound the iterative methods.
const (
	defaultMaxIter = 100
	defaultTol     = 1e-6
	smoothing      = 0.01 // Laplace smoothing for M-steps
)

// OneCoinEM is the worker-probability model (ZenCrowd-style): each worker
// has a single reliability parameter p; a worker answers the true label
// with probability p and any specific wrong label with probability
// (1-p)/(K-1). Parameters and posteriors are estimated jointly with EM.
type OneCoinEM struct {
	MaxIter int
	Tol     float64
}

// Name implements Inferrer.
func (OneCoinEM) Name() string { return "OneCoinEM" }

// Infer implements Inferrer.
func (m OneCoinEM) Infer(ds *Dataset) (*Result, error) {
	maxIter, tol := m.MaxIter, m.Tol
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}
	if tol <= 0 {
		tol = defaultTol
	}
	k := float64(ds.K)

	// Initialize posteriors from vote fractions (soft majority vote).
	post := initPosteriors(ds)
	reliability := make([]float64, len(ds.WorkerIDs))
	for i := range reliability {
		reliability[i] = 0.8
	}
	prior := make([]float64, ds.K)
	for c := range prior {
		prior[c] = 1 / k
	}

	iters := 0
	for ; iters < maxIter; iters++ {
		// M-step: worker reliability = expected fraction of answers that
		// match the (soft) truth; class prior from posteriors.
		correct := make([]float64, len(ds.WorkerIDs))
		total := make([]float64, len(ds.WorkerIDs))
		for ti, id := range ds.TaskIDs {
			for _, a := range ds.Answers[id] {
				wi := ds.workerIndex[a.Worker]
				correct[wi] += post[ti][a.Option]
				total[wi]++
			}
		}
		for wi := range reliability {
			if total[wi] == 0 {
				reliability[wi] = 1 / k
				continue
			}
			reliability[wi] = (correct[wi] + smoothing) / (total[wi] + 2*smoothing)
			// Clamp away from 0/1 to keep likelihoods finite.
			reliability[wi] = clamp(reliability[wi], 0.01, 0.99)
		}
		newPrior := make([]float64, ds.K)
		for ti := range ds.TaskIDs {
			for c := 0; c < ds.K; c++ {
				newPrior[c] += post[ti][c]
			}
		}
		stats.Normalize(newPrior)
		prior = newPrior

		// E-step: posterior over true labels.
		delta := 0.0
		for ti, id := range ds.TaskIDs {
			logp := make([]float64, ds.K)
			for c := 0; c < ds.K; c++ {
				logp[c] = math.Log(prior[c] + 1e-300)
			}
			for _, a := range ds.Answers[id] {
				wi := ds.workerIndex[a.Worker]
				p := reliability[wi]
				wrong := (1 - p) / (k - 1)
				for c := 0; c < ds.K; c++ {
					if a.Option == c {
						logp[c] += math.Log(p)
					} else {
						logp[c] += math.Log(wrong)
					}
				}
			}
			np := softmax(logp)
			for c := 0; c < ds.K; c++ {
				delta += math.Abs(np[c] - post[ti][c])
			}
			post[ti] = np
		}
		if delta < tol*float64(len(ds.TaskIDs)) {
			iters++
			break
		}
	}
	return packResult("OneCoinEM", ds, post, func(w string) float64 {
		return reliability[ds.workerIndex[w]]
	}, iters), nil
}

// DawidSkene is the classic confusion-matrix EM estimator: each worker w
// has a K×K matrix T_w where T_w[c][l] = P(worker answers l | truth c).
type DawidSkene struct {
	MaxIter int
	Tol     float64
}

// Name implements Inferrer.
func (DawidSkene) Name() string { return "DS" }

// Infer implements Inferrer.
func (m DawidSkene) Infer(ds *Dataset) (*Result, error) {
	maxIter, tol := m.MaxIter, m.Tol
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}
	if tol <= 0 {
		tol = defaultTol
	}
	post := initPosteriors(ds)
	conf := make([]stats.Confusion, len(ds.WorkerIDs))
	prior := make([]float64, ds.K)
	for c := range prior {
		prior[c] = 1 / float64(ds.K)
	}

	iters := 0
	for ; iters < maxIter; iters++ {
		// M-step: confusion matrices from soft counts.
		for wi := range conf {
			conf[wi] = stats.NewConfusion(ds.K)
		}
		for ti, id := range ds.TaskIDs {
			for _, a := range ds.Answers[id] {
				wi := ds.workerIndex[a.Worker]
				for c := 0; c < ds.K; c++ {
					conf[wi].Add(c, a.Option, post[ti][c])
				}
			}
		}
		for wi := range conf {
			conf[wi].RowNormalize(smoothing)
		}
		newPrior := make([]float64, ds.K)
		for ti := range ds.TaskIDs {
			for c := 0; c < ds.K; c++ {
				newPrior[c] += post[ti][c]
			}
		}
		stats.Normalize(newPrior)
		prior = newPrior

		// E-step.
		delta := 0.0
		for ti, id := range ds.TaskIDs {
			logp := make([]float64, ds.K)
			for c := 0; c < ds.K; c++ {
				logp[c] = math.Log(prior[c] + 1e-300)
			}
			for _, a := range ds.Answers[id] {
				wi := ds.workerIndex[a.Worker]
				for c := 0; c < ds.K; c++ {
					logp[c] += math.Log(conf[wi][c][a.Option] + 1e-300)
				}
			}
			np := softmax(logp)
			for c := 0; c < ds.K; c++ {
				delta += math.Abs(np[c] - post[ti][c])
			}
			post[ti] = np
		}
		if delta < tol*float64(len(ds.TaskIDs)) {
			iters++
			break
		}
	}
	return packResult("DS", ds, post, func(w string) float64 {
		wi := ds.workerIndex[w]
		if conf[wi] == nil {
			return 0.5
		}
		return conf[wi].Accuracy()
	}, iters), nil
}

// initPosteriors seeds EM with normalized vote fractions; tasks without
// answers start uniform.
func initPosteriors(ds *Dataset) [][]float64 {
	post := make([][]float64, len(ds.TaskIDs))
	for ti, id := range ds.TaskIDs {
		p := make([]float64, ds.K)
		for _, a := range ds.Answers[id] {
			p[a.Option]++
		}
		stats.Normalize(p)
		post[ti] = p
	}
	return post
}

// softmax exponentiates and normalizes log-probabilities stably.
func softmax(logp []float64) []float64 {
	max := logp[0]
	for _, v := range logp[1:] {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(logp))
	sum := 0.0
	for i, v := range logp {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// packResult converts posteriors into a Result with hard labels.
func packResult(method string, ds *Dataset, post [][]float64, quality func(string) float64, iters int) *Result {
	res := newResult(method, ds)
	res.Iterations = iters
	for ti, id := range ds.TaskIDs {
		res.Posterior[id] = post[ti]
		lbl := stats.ArgMax(post[ti])
		if lbl < 0 {
			lbl = 0
		}
		res.Labels[id] = lbl
	}
	for _, w := range ds.WorkerIDs {
		res.WorkerQuality[w] = quality(w)
	}
	return res
}
