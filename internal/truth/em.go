package truth

import (
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// emDefaults bound the iterative methods.
const (
	defaultMaxIter = 100
	defaultTol     = 1e-6
	smoothing      = 0.01 // Laplace smoothing for M-steps
)

// OneCoinEM is the worker-probability model (ZenCrowd-style): each worker
// has a single reliability parameter p; a worker answers the true label
// with probability p and any specific wrong label with probability
// (1-p)/(K-1). Parameters and posteriors are estimated jointly with EM.
//
// The E-step is sharded over task ranges and the M-step over worker
// ranges (see parallel.go); results are bit-identical at any GOMAXPROCS.
type OneCoinEM struct {
	MaxIter int
	Tol     float64
	// Obs, when non-nil, receives one ObserveEMIteration per iteration
	// (with the summed L1 posterior change the stopping rule tests) and
	// one ObserveEMRun per Infer. A nil observer costs nothing: no
	// timestamps are taken and no calls are made.
	Obs obs.EMObserver
	// Warm, when non-nil and produced by a previous OneCoinEM run at the
	// same K, seeds the posteriors from the previous estimates instead of
	// vote fractions; tasks unknown to the state fall back to the cold
	// init. nil is exactly the cold start.
	Warm *WarmState
}

// Name implements Inferrer.
func (OneCoinEM) Name() string { return "OneCoinEM" }

// Infer implements Inferrer.
func (m OneCoinEM) Infer(ds *Dataset) (*Result, error) {
	maxIter, tol := m.MaxIter, m.Tol
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}
	if tol <= 0 {
		tol = defaultTol
	}
	ds.dense()
	n, nw, K := len(ds.TaskIDs), len(ds.WorkerIDs), ds.K
	k := float64(K)
	workers := kernelWorkers(len(ds.refs))

	post := make([]float64, n*K)
	seedPosteriors(ds, post, "OneCoinEM", m.Warm)
	reliability := make([]float64, nw)
	for i := range reliability {
		reliability[i] = 0.8
	}
	// Per-worker log-likelihood terms, refreshed each M-step so the
	// E-step does zero math.Log calls per answer.
	logP := make([]float64, nw)
	logWrong := make([]float64, nw)
	prior := make([]float64, K)
	logPrior := make([]float64, K)
	deltas := make([]float64, n)
	scratch := make([]float64, workers*2*K)

	var start time.Time
	if m.Obs != nil {
		start = time.Now()
	}
	converged := false
	iters := 0
	for ; iters < maxIter; iters++ {
		// M-step: worker reliability = expected fraction of answers that
		// match the (soft) truth. Each worker's sum runs over their
		// answers in task order inside one shard.
		parallelFor(workers, nw, func(_, lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				sum := 0.0
				for _, p := range ds.wAns[ds.wOff[wi]:ds.wOff[wi+1]] {
					r := &ds.refs[p]
					sum += post[int(r.task)*K+int(r.option)]
				}
				total := float64(ds.wOff[wi+1] - ds.wOff[wi])
				rel := 1 / k
				if total > 0 {
					// Clamp away from 0/1 to keep likelihoods finite.
					rel = clamp((sum+smoothing)/(total+2*smoothing), 0.01, 0.99)
				}
				reliability[wi] = rel
				logP[wi] = math.Log(rel)
				logWrong[wi] = math.Log((1 - rel) / (k - 1))
			}
		})
		// Class prior from posteriors: serial O(n·K) reduction.
		priorInto(prior, logPrior, post, n, K)

		// E-step: posterior over true labels, sharded by task range.
		parallelFor(workers, n, func(slot, lo, hi int) {
			buf := scratch[slot*2*K:]
			logp, np := buf[:K], buf[K:2*K]
			for ti := lo; ti < hi; ti++ {
				copy(logp, logPrior)
				for p := ds.taskOff[ti]; p < ds.taskOff[ti+1]; p++ {
					r := &ds.refs[p]
					opt := int(r.option)
					for c := 0; c < K; c++ {
						if c == opt {
							logp[c] += logP[r.worker]
						} else {
							logp[c] += logWrong[r.worker]
						}
					}
				}
				softmaxInto(np, logp)
				deltas[ti] = replaceRow(post[ti*K:ti*K+K], np)
			}
		})
		delta := sumSerial(deltas)
		if m.Obs != nil {
			m.Obs.ObserveEMIteration("OneCoinEM", iters+1, delta)
		}
		if delta < tol*float64(n) {
			iters++
			converged = true
			break
		}
	}
	if m.Obs != nil {
		m.Obs.ObserveEMRun("OneCoinEM", iters, converged, time.Since(start))
	}
	res := packResult("OneCoinEM", ds, post, reliability, iters)
	res.Warm = &WarmState{Method: "OneCoinEM", K: K, Posterior: res.Posterior}
	return res, nil
}

// DawidSkene is the classic confusion-matrix EM estimator: each worker w
// has a K×K matrix T_w where T_w[c][l] = P(worker answers l | truth c).
//
// Confusion matrices live in one flat [nw·K·K] slab with a parallel slab
// of their logs, so the E-step reads precomputed log-probabilities by
// integer index. Sharding follows the same model as OneCoinEM.
type DawidSkene struct {
	MaxIter int
	Tol     float64
	// Obs follows the same contract as OneCoinEM.Obs (nil = free).
	Obs obs.EMObserver
	// Warm follows the same contract as OneCoinEM.Warm.
	Warm *WarmState
}

// Name implements Inferrer.
func (DawidSkene) Name() string { return "DS" }

// Infer implements Inferrer.
func (m DawidSkene) Infer(ds *Dataset) (*Result, error) {
	maxIter, tol := m.MaxIter, m.Tol
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}
	if tol <= 0 {
		tol = defaultTol
	}
	ds.dense()
	n, nw, K := len(ds.TaskIDs), len(ds.WorkerIDs), ds.K
	kk := K * K
	workers := kernelWorkers(len(ds.refs))

	post := make([]float64, n*K)
	seedPosteriors(ds, post, "DS", m.Warm)
	conf := make([]float64, nw*kk)    // row-major per worker: [c][l]
	logConf := make([]float64, nw*kk) // log(conf + 1e-300)
	prior := make([]float64, K)
	logPrior := make([]float64, K)
	deltas := make([]float64, n)
	scratch := make([]float64, workers*2*K)

	var start time.Time
	if m.Obs != nil {
		start = time.Now()
	}
	converged := false
	iters := 0
	for ; iters < maxIter; iters++ {
		// M-step: confusion matrices from soft counts, one worker per
		// shard slot — each matrix is zeroed, filled in task order,
		// row-normalized, and logged without leaving its shard.
		parallelFor(workers, nw, func(_, lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				cm := conf[wi*kk : wi*kk+kk]
				for i := range cm {
					cm[i] = 0
				}
				for _, p := range ds.wAns[ds.wOff[wi]:ds.wOff[wi+1]] {
					r := &ds.refs[p]
					row := post[int(r.task)*K:]
					opt := int(r.option)
					for c := 0; c < K; c++ {
						cm[c*K+opt] += row[c]
					}
				}
				rowNormalizeLog(cm, logConf[wi*kk:wi*kk+kk], K, smoothing)
			}
		})
		priorInto(prior, logPrior, post, n, K)

		// E-step.
		parallelFor(workers, n, func(slot, lo, hi int) {
			buf := scratch[slot*2*K:]
			logp, np := buf[:K], buf[K:2*K]
			for ti := lo; ti < hi; ti++ {
				copy(logp, logPrior)
				for p := ds.taskOff[ti]; p < ds.taskOff[ti+1]; p++ {
					r := &ds.refs[p]
					lw := logConf[int(r.worker)*kk+int(r.option):]
					for c := 0; c < K; c++ {
						logp[c] += lw[c*K]
					}
				}
				softmaxInto(np, logp)
				deltas[ti] = replaceRow(post[ti*K:ti*K+K], np)
			}
		})
		delta := sumSerial(deltas)
		if m.Obs != nil {
			m.Obs.ObserveEMIteration("DS", iters+1, delta)
		}
		if delta < tol*float64(n) {
			iters++
			converged = true
			break
		}
	}
	if m.Obs != nil {
		m.Obs.ObserveEMRun("DS", iters, converged, time.Since(start))
	}

	// Worker quality: trace-weighted accuracy of the probability-form
	// confusion matrix under uniform class priors.
	quality := make([]float64, nw)
	for wi := range quality {
		s := 0.0
		for c := 0; c < K; c++ {
			s += conf[wi*kk+c*K+c]
		}
		quality[wi] = s / float64(K)
	}
	res := packResult("DS", ds, post, quality, iters)
	res.Warm = &WarmState{Method: "DS", K: K, Posterior: res.Posterior}
	return res, nil
}

// rowNormalizeLog converts one worker's K×K soft-count matrix into
// per-true-class probabilities with Laplace smoothing (mirroring
// stats.Confusion.RowNormalize) and writes log(v+1e-300) into dst.
func rowNormalizeLog(cm, dst []float64, K int, alpha float64) {
	for c := 0; c < K; c++ {
		row := cm[c*K : c*K+K]
		total := 0.0
		for l := range row {
			row[l] += alpha
			total += row[l]
		}
		if total == 0 {
			u := 1 / float64(K)
			for l := range row {
				row[l] = u
			}
		} else {
			for l := range row {
				row[l] /= total
			}
		}
		for l := range row {
			dst[c*K+l] = math.Log(row[l] + 1e-300)
		}
	}
}

// priorInto recomputes the class prior (and its logs) from the flat
// posterior matrix: a cheap serial reduction in task order.
func priorInto(prior, logPrior, post []float64, n, K int) {
	for c := range prior {
		prior[c] = 0
	}
	for ti := 0; ti < n; ti++ {
		row := post[ti*K : ti*K+K]
		for c := 0; c < K; c++ {
			prior[c] += row[c]
		}
	}
	stats.Normalize(prior)
	for c := range prior {
		logPrior[c] = math.Log(prior[c] + 1e-300)
	}
}

// replaceRow copies np over row and returns the L1 change.
func replaceRow(row, np []float64) float64 {
	d := 0.0
	for c := range row {
		d += math.Abs(np[c] - row[c])
		row[c] = np[c]
	}
	return d
}

// sumSerial reduces per-task scratch values in task order, keeping the
// convergence test independent of shard boundaries.
func sumSerial(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// initPosteriorsInto seeds EM with normalized vote fractions; tasks with
// no answers explicitly start uniform.
func initPosteriorsInto(ds *Dataset, post []float64) {
	K := ds.K
	for ti := range ds.TaskIDs {
		initPosteriorRow(ds, ti, post[ti*K:ti*K+K])
	}
}

// initPosteriorRow writes the cold-start posterior of one task: its
// normalized vote fractions, uniform when it has no answers.
func initPosteriorRow(ds *Dataset, ti int, row []float64) {
	lo, hi := ds.taskOff[ti], ds.taskOff[ti+1]
	if lo == hi {
		u := 1 / float64(len(row))
		for c := range row {
			row[c] = u
		}
		return
	}
	for c := range row {
		row[c] = 0
	}
	for p := lo; p < hi; p++ {
		row[ds.refs[p].option]++
	}
	total := float64(hi - lo)
	for c := range row {
		row[c] /= total
	}
}

// softmaxInto exponentiates and normalizes log-probabilities stably,
// writing the distribution into dst without allocating.
func softmaxInto(dst, logp []float64) {
	max := logp[0]
	for _, v := range logp[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logp {
		dst[i] = math.Exp(v - max)
		sum += dst[i]
	}
	for i := range dst {
		dst[i] /= sum
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// packResult converts the flat posterior slab and dense worker-quality
// vector into a Result. Posterior rows alias the slab (one allocation for
// the whole matrix instead of one per task); callers treat Results as
// immutable, matching the ResultCache contract.
func packResult(method string, ds *Dataset, post []float64, quality []float64, iters int) *Result {
	res := newResult(method, ds)
	res.Iterations = iters
	K := ds.K
	for ti, id := range ds.TaskIDs {
		row := post[ti*K : ti*K+K : ti*K+K]
		res.Posterior[id] = row
		lbl := stats.ArgMax(row)
		if lbl < 0 {
			lbl = 0
		}
		res.Labels[id] = lbl
	}
	for wi, w := range ds.WorkerIDs {
		res.WorkerQuality[w] = quality[wi]
	}
	return res
}
