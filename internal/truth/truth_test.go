package truth

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/stats"
)

// buildWorkload plants nTasks binary tasks with the given difficulty,
// collects redundancy-k answers from a population, and returns the pool.
func buildWorkload(seed uint64, nTasks, nWorkers, k int, mix crowd.Mix, difficulty float64) (*core.Pool, *Dataset) {
	rng := stats.NewRNG(seed)
	pool := core.NewPool()
	for i := 0; i < nTasks; i++ {
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Options:     []string{"no", "yes"},
			GroundTruth: rng.Intn(2),
			Difficulty:  difficulty,
		})
	}
	ws := crowd.NewPopulation(rng, nWorkers, mix)
	pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.Unlimited())
	assigner := core.AssignerFunc(func(p *core.Pool, worker string) (core.TaskID, bool) {
		el := p.EligibleFor(worker)
		if len(el) == 0 {
			return 0, false
		}
		// Fewest-answers-first keeps redundancy balanced.
		best := el[0]
		for _, id := range el[1:] {
			if p.AnswerCount(id) < p.AnswerCount(best) {
				best = id
			}
		}
		return best, true
	})
	if _, err := pl.CollectRedundant(assigner, k); err != nil {
		panic(err)
	}
	ds, err := FromPool(pool, pool.TaskIDs())
	if err != nil {
		panic(err)
	}
	return pool, ds
}

func inferAcc(t *testing.T, inf Inferrer, pool *core.Pool, ds *Dataset) float64 {
	t.Helper()
	res, err := inf.Infer(ds)
	if err != nil {
		t.Fatalf("%s: %v", inf.Name(), err)
	}
	return Accuracy(res, pool, ds)
}

func TestFromPoolValidation(t *testing.T) {
	pool := core.NewPool()
	id1 := pool.MustAdd(&core.Task{ID: 1, Kind: core.SingleChoice, Options: []string{"a", "b"}, GroundTruth: 0})
	id3opt := pool.MustAdd(&core.Task{ID: 2, Kind: core.SingleChoice, Options: []string{"a", "b", "c"}, GroundTruth: 0})
	idFill := pool.MustAdd(&core.Task{ID: 3, Kind: core.FillIn})

	if _, err := FromPool(pool, nil); err == nil {
		t.Fatal("empty id set should fail")
	}
	if _, err := FromPool(pool, []core.TaskID{id1, id3opt}); err == nil {
		t.Fatal("mixed option counts should fail")
	}
	if _, err := FromPool(pool, []core.TaskID{idFill}); err == nil {
		t.Fatal("non-choice task should fail")
	}
	if _, err := FromPool(pool, []core.TaskID{999}); err == nil {
		t.Fatal("unknown task should fail")
	}
	ds, err := FromPool(pool, []core.TaskID{id1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.K != 2 || len(ds.TaskIDs) != 1 {
		t.Fatalf("dataset shape wrong: K=%d tasks=%d", ds.K, len(ds.TaskIDs))
	}
	if ds.TaskIndex(id1) != 0 || ds.TaskIndex(999) != -1 {
		t.Fatal("TaskIndex broken")
	}
}

func TestMajorityVoteBasic(t *testing.T) {
	pool := core.NewPool()
	id := pool.MustAdd(&core.Task{ID: 1, Kind: core.SingleChoice, Options: []string{"a", "b"}, GroundTruth: 1})
	pool.Record(core.Answer{Task: id, Worker: "w1", Option: 1})
	pool.Record(core.Answer{Task: id, Worker: "w2", Option: 1})
	pool.Record(core.Answer{Task: id, Worker: "w3", Option: 0})
	ds, _ := FromPool(pool, pool.TaskIDs())
	res, err := MajorityVote{}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[id] != 1 {
		t.Fatalf("MV label = %d", res.Labels[id])
	}
	if c := res.Confidence(id); c < 0.6 || c > 0.7 {
		t.Fatalf("MV confidence = %v, want 2/3", c)
	}
	// Agreement quality: w3 disagrees with the majority.
	if res.WorkerQuality["w1"] != 1 || res.WorkerQuality["w3"] != 0 {
		t.Fatalf("agreement quality wrong: %v", res.WorkerQuality)
	}
}

func TestMajorityVoteTieDeterminism(t *testing.T) {
	pool := core.NewPool()
	id := pool.MustAdd(&core.Task{ID: 1, Kind: core.SingleChoice, Options: []string{"a", "b"}, GroundTruth: 0})
	pool.Record(core.Answer{Task: id, Worker: "w1", Option: 0})
	pool.Record(core.Answer{Task: id, Worker: "w2", Option: 1})
	ds, _ := FromPool(pool, pool.TaskIDs())
	res, _ := MajorityVote{}.Infer(ds)
	if res.Labels[id] != 0 {
		t.Fatalf("tie should resolve to lowest option, got %d", res.Labels[id])
	}
}

func TestMajorityVoteNoAnswersUniform(t *testing.T) {
	pool := core.NewPool()
	id := pool.MustAdd(&core.Task{ID: 1, Kind: core.SingleChoice, Options: []string{"a", "b"}, GroundTruth: 0})
	ds, _ := FromPool(pool, pool.TaskIDs())
	res, _ := MajorityVote{}.Infer(ds)
	post := res.Posterior[id]
	if post[0] != 0.5 || post[1] != 0.5 {
		t.Fatalf("unanswered task posterior = %v", post)
	}
}

func TestWeightedMajorityVoteOverridesCount(t *testing.T) {
	pool := core.NewPool()
	id := pool.MustAdd(&core.Task{ID: 1, Kind: core.SingleChoice, Options: []string{"a", "b"}, GroundTruth: 1})
	// Two low-weight spammers vote 0; one trusted expert votes 1.
	pool.Record(core.Answer{Task: id, Worker: "spam1", Option: 0})
	pool.Record(core.Answer{Task: id, Worker: "spam2", Option: 0})
	pool.Record(core.Answer{Task: id, Worker: "expert", Option: 1})
	ds, _ := FromPool(pool, pool.TaskIDs())
	res, err := WeightedMajorityVote{Weights: map[string]float64{
		"spam1": 0.1, "spam2": 0.1, "expert": 0.95,
	}}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[id] != 1 {
		t.Fatalf("weighted vote ignored weights: label %d", res.Labels[id])
	}
	if _, err := (WeightedMajorityVote{Weights: map[string]float64{"spam1": -1}}).Infer(ds); err == nil {
		t.Fatal("negative weight should fail")
	}
}

func TestGoldenWeights(t *testing.T) {
	screen := core.NewWorkerScreen(1, 0.5)
	screen.Observe("good", true)
	screen.Observe("good", true)
	screen.Observe("bad", false)
	w := GoldenWeights(screen, []string{"good", "bad", "new"}, 0.1)
	if w["good"] != 1 || w["bad"] != 0.1 || w["new"] != 0.5 {
		t.Fatalf("GoldenWeights = %v", w)
	}
}

func TestEMBeatsMVInSpammyRegime(t *testing.T) {
	pool, ds := buildWorkload(101, 300, 40, 5, crowd.RegimeSpammy, 0.3)
	mv := inferAcc(t, MajorityVote{}, pool, ds)
	oc := inferAcc(t, OneCoinEM{}, pool, ds)
	dsAcc := inferAcc(t, DawidSkene{}, pool, ds)
	if oc < mv-0.01 {
		t.Fatalf("OneCoinEM %.3f worse than MV %.3f in spammy regime", oc, mv)
	}
	if dsAcc < mv-0.01 {
		t.Fatalf("DS %.3f worse than MV %.3f in spammy regime", dsAcc, mv)
	}
	if mv < 0.6 {
		t.Fatalf("MV accuracy implausibly low: %.3f", mv)
	}
	if oc < 0.85 {
		t.Fatalf("OneCoinEM accuracy too low in spammy regime: %.3f", oc)
	}
}

func TestAllMethodsNearPerfectOnReliableCrowd(t *testing.T) {
	pool, ds := buildWorkload(102, 200, 30, 5, crowd.RegimeReliable, 0.2)
	for _, inf := range []Inferrer{MajorityVote{}, OneCoinEM{}, DawidSkene{}, GLAD{}} {
		if acc := inferAcc(t, inf, pool, ds); acc < 0.95 {
			t.Errorf("%s accuracy %.3f on reliable crowd", inf.Name(), acc)
		}
	}
}

func TestEMWorkerQualitySeparatesSpammers(t *testing.T) {
	rng := stats.NewRNG(103)
	pool := core.NewPool()
	for i := 0; i < 200; i++ {
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Options: []string{"no", "yes"}, GroundTruth: rng.Intn(2), Difficulty: 0.2,
		})
	}
	expert := crowd.NewWorker("expert", 3.5, crowd.Honest, rng)
	spammer := crowd.NewWorker("spammer", 0, crowd.Spammer, rng)
	extra1 := crowd.NewWorker("extra1", 2, crowd.Honest, rng)
	extra2 := crowd.NewWorker("extra2", 2, crowd.Honest, rng)
	pl := core.NewPlatform(pool, []core.Worker{expert, spammer, extra1, extra2}, core.Unlimited())
	assigner := core.AssignerFunc(func(p *core.Pool, w string) (core.TaskID, bool) {
		el := p.EligibleFor(w)
		if len(el) == 0 {
			return 0, false
		}
		return el[0], true
	})
	if _, err := pl.CollectRedundant(assigner, 4); err != nil {
		t.Fatal(err)
	}
	ds, _ := FromPool(pool, pool.TaskIDs())
	for _, inf := range []Inferrer{OneCoinEM{}, DawidSkene{}, GLAD{}} {
		res, err := inf.Infer(ds)
		if err != nil {
			t.Fatal(err)
		}
		qe, qs := res.WorkerQuality["expert"], res.WorkerQuality["spammer"]
		if qe <= qs+0.2 {
			t.Errorf("%s: expert quality %.3f not clearly above spammer %.3f",
				inf.Name(), qe, qs)
		}
	}
}

func TestGLADRecoversDifficultyOrdering(t *testing.T) {
	rng := stats.NewRNG(104)
	pool := core.NewPool()
	// First 100 tasks easy, next 100 hard.
	for i := 0; i < 200; i++ {
		d := 0.05
		if i >= 100 {
			d = 0.95
		}
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Options: []string{"no", "yes"}, GroundTruth: rng.Intn(2), Difficulty: d,
		})
	}
	ws := crowd.NewPopulation(rng, 25, crowd.RegimeMixed)
	pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.Unlimited())
	assigner := core.AssignerFunc(func(p *core.Pool, w string) (core.TaskID, bool) {
		el := p.EligibleFor(w)
		if len(el) == 0 {
			return 0, false
		}
		return el[0], true
	})
	if _, err := pl.CollectRedundant(assigner, 7); err != nil {
		t.Fatal(err)
	}
	ds, _ := FromPool(pool, pool.TaskIDs())
	res, err := GLAD{}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	easySum, hardSum := 0.0, 0.0
	for i, id := range ds.TaskIDs {
		e, ok := res.TaskEasiness(ds, id)
		if !ok {
			t.Fatal("GLAD did not expose easiness")
		}
		if i < 100 {
			easySum += e
		} else {
			hardSum += e
		}
	}
	if easySum/100 <= hardSum/100 {
		t.Fatalf("GLAD easiness: easy tasks %.3f <= hard tasks %.3f",
			easySum/100, hardSum/100)
	}
}

func TestEMIterationsReported(t *testing.T) {
	pool, ds := buildWorkload(105, 50, 10, 3, crowd.RegimeMixed, 0.3)
	_ = pool
	res, err := OneCoinEM{MaxIter: 5}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 || res.Iterations > 5 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestThreeClassInference(t *testing.T) {
	rng := stats.NewRNG(106)
	pool := core.NewPool()
	for i := 0; i < 150; i++ {
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Options:     []string{"pos", "neg", "neutral"},
			GroundTruth: rng.Intn(3), Difficulty: 0.3,
		})
	}
	ws := crowd.NewPopulation(rng, 20, crowd.RegimeMixed)
	pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.Unlimited())
	assigner := core.AssignerFunc(func(p *core.Pool, w string) (core.TaskID, bool) {
		el := p.EligibleFor(w)
		if len(el) == 0 {
			return 0, false
		}
		return el[0], true
	})
	if _, err := pl.CollectRedundant(assigner, 5); err != nil {
		t.Fatal(err)
	}
	ds, _ := FromPool(pool, pool.TaskIDs())
	if ds.K != 3 {
		t.Fatalf("K = %d", ds.K)
	}
	for _, inf := range []Inferrer{MajorityVote{}, OneCoinEM{}, DawidSkene{}, GLAD{}} {
		if acc := inferAcc(t, inf, pool, ds); acc < 0.7 {
			t.Errorf("%s 3-class accuracy %.3f", inf.Name(), acc)
		}
	}
}

func TestPosteriorsAreDistributions(t *testing.T) {
	pool, ds := buildWorkload(107, 80, 15, 3, crowd.RegimeMixed, 0.4)
	_ = pool
	for _, inf := range []Inferrer{MajorityVote{}, OneCoinEM{}, DawidSkene{}, GLAD{}} {
		res, err := inf.Infer(ds)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ds.TaskIDs {
			post := res.Posterior[id]
			if len(post) != ds.K {
				t.Fatalf("%s posterior arity %d", inf.Name(), len(post))
			}
			sum := 0.0
			for _, p := range post {
				if p < -1e-9 || p > 1+1e-9 {
					t.Fatalf("%s posterior value %v", inf.Name(), p)
				}
				sum += p
			}
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("%s posterior sums to %v", inf.Name(), sum)
			}
		}
	}
}

func TestNumericAggregation(t *testing.T) {
	rng := stats.NewRNG(108)
	pool := core.NewPool()
	var ids []core.TaskID
	for i := 0; i < 60; i++ {
		id := pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.Rating,
			GroundTruthScore: rng.Range(1, 5),
		})
		ids = append(ids, id)
	}
	ws := crowd.NewPopulation(rng, 15, crowd.RegimeSpammy)
	pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.Unlimited())
	assigner := core.AssignerFunc(func(p *core.Pool, w string) (core.TaskID, bool) {
		el := p.EligibleFor(w)
		if len(el) == 0 {
			return 0, false
		}
		return el[0], true
	})
	if _, err := pl.CollectRedundant(assigner, 7); err != nil {
		t.Fatal(err)
	}
	mean, err := AggregateNumeric(pool, ids, NumericMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	median, err := AggregateNumeric(pool, ids, NumericMedian, nil)
	if err != nil {
		t.Fatal(err)
	}
	meanErr := NumericError(pool, mean)
	medianErr := NumericError(pool, median)
	if medianErr > meanErr+0.05 {
		t.Fatalf("median %.3f should be robust vs mean %.3f in spammy regime",
			medianErr, meanErr)
	}
	if meanErr > 1.5 {
		t.Fatalf("mean error implausibly high: %.3f", meanErr)
	}
	// Weighted mean with oracle weights beats plain mean.
	weights := make(map[string]float64)
	for _, w := range ws {
		if w.Behave == crowd.Honest {
			weights[w.Name] = w.Ability
		} else {
			weights[w.Name] = 0.01
		}
	}
	wmean, err := AggregateNumeric(pool, ids, NumericWeightedMean, weights)
	if err != nil {
		t.Fatal(err)
	}
	if NumericError(pool, wmean) > meanErr+0.01 {
		t.Fatalf("oracle-weighted mean %.3f worse than mean %.3f",
			NumericError(pool, wmean), meanErr)
	}
}

func TestAggregateNumericValidation(t *testing.T) {
	pool := core.NewPool()
	choice := pool.MustAdd(&core.Task{ID: 1, Kind: core.SingleChoice, Options: []string{"a", "b"}, GroundTruth: 0})
	if _, err := AggregateNumeric(pool, []core.TaskID{choice}, NumericMean, nil); err == nil {
		t.Fatal("non-rating task should fail")
	}
	if _, err := AggregateNumeric(pool, []core.TaskID{999}, NumericMean, nil); err == nil {
		t.Fatal("unknown task should fail")
	}
}

func TestAccuracyIgnoresUnplantedTruth(t *testing.T) {
	pool := core.NewPool()
	id := pool.MustAdd(&core.Task{ID: 1, Kind: core.SingleChoice, Options: []string{"a", "b"}, GroundTruth: -1})
	pool.Record(core.Answer{Task: id, Worker: "w1", Option: 0})
	ds, _ := FromPool(pool, pool.TaskIDs())
	res, _ := MajorityVote{}.Infer(ds)
	if acc := Accuracy(res, pool, ds); acc != 0 {
		t.Fatalf("accuracy over unplanted tasks = %v, want 0 (no denominator)", acc)
	}
}

func TestInferrerNamesAndDatasetAccessors(t *testing.T) {
	names := map[string]bool{}
	for _, inf := range []Inferrer{
		MajorityVote{}, WeightedMajorityVote{}, OneCoinEM{}, DawidSkene{}, GLAD{},
	} {
		n := inf.Name()
		if n == "" || names[n] {
			t.Fatalf("bad or duplicate inferrer name %q", n)
		}
		names[n] = true
	}
	for _, m := range []NumericMethod{NumericMean, NumericMedian, NumericWeightedMean} {
		if m.String() == "" {
			t.Fatalf("numeric method %d has empty name", int(m))
		}
	}

	pool := core.NewPool()
	id := pool.MustAdd(&core.Task{ID: 1, Kind: core.SingleChoice, Options: []string{"a", "b"}, GroundTruth: 0})
	pool.Record(core.Answer{Task: id, Worker: "w1", Option: 0})
	pool.Record(core.Answer{Task: id, Worker: "w2", Option: 1})
	ds, err := FromPool(pool, pool.TaskIDs())
	if err != nil {
		t.Fatal(err)
	}
	if ds.TotalAnswers() != 2 {
		t.Fatalf("TotalAnswers = %d", ds.TotalAnswers())
	}
	if ds.WorkerIndex("w1") < 0 || ds.WorkerIndex("nobody") != -1 {
		t.Fatal("WorkerIndex broken")
	}
	// TaskEasiness is only available from GLAD results.
	mv, _ := MajorityVote{}.Infer(ds)
	if _, ok := mv.TaskEasiness(ds, id); ok {
		t.Fatal("MV should not expose easiness")
	}
	glad, err := GLAD{MaxIter: 2}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := glad.TaskEasiness(ds, 999); ok {
		t.Fatal("easiness for unknown task should be absent")
	}
	if c := mv.Confidence(999); c != 0 {
		t.Fatalf("confidence of unknown task = %v", c)
	}
}

func TestBradleyTerrySmoke(t *testing.T) {
	res, err := BradleyTerry(3, []Comparison{
		{I: 0, J: 1, IWon: true}, {I: 1, J: 2, IWon: true}, {I: 0, J: 2, IWon: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranking[0] != 0 || res.Ranking[2] != 2 {
		t.Fatalf("ranking = %v", res.Ranking)
	}
}
