package truth

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/crowd"
	"repro/internal/obs"
)

// recordingObserver captures the EMObserver call stream for assertions.
type recordingObserver struct {
	mu         sync.Mutex
	iterations []float64 // per-iteration deltas, in call order
	iterSeq    []int     // the iter argument per call
	runs       int
	method     string
	runIters   int
	converged  bool
	wall       time.Duration
}

func (r *recordingObserver) ObserveEMIteration(method string, iter int, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.iterations = append(r.iterations, delta)
	r.iterSeq = append(r.iterSeq, iter)
}

func (r *recordingObserver) ObserveEMRun(method string, iterations int, converged bool, wall time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs++
	r.method = method
	r.runIters = iterations
	r.converged = converged
	r.wall = wall
}

// TestEMObserverContract runs every instrumented kernel with a recording
// observer and checks the contract: one iteration call per EM round with
// monotonically numbered iterations, exactly one run summary whose
// iteration count matches Result.Iterations, and a non-negative wall time.
func TestEMObserverContract(t *testing.T) {
	_, ds := buildWorkload(77, 60, 15, 5, crowd.RegimeMixed, 0.3)
	for _, tc := range []struct {
		name  string
		infer func(o obs.EMObserver) (*Result, error)
	}{
		{"OneCoinEM", func(o obs.EMObserver) (*Result, error) { return OneCoinEM{Obs: o}.Infer(ds) }},
		{"DS", func(o obs.EMObserver) (*Result, error) { return DawidSkene{Obs: o}.Infer(ds) }},
		{"GLAD", func(o obs.EMObserver) (*Result, error) { return GLAD{Obs: o}.Infer(ds) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := &recordingObserver{}
			res, err := tc.infer(rec)
			if err != nil {
				t.Fatal(err)
			}
			if rec.runs != 1 {
				t.Fatalf("ObserveEMRun called %d times, want 1", rec.runs)
			}
			if rec.method != tc.name {
				t.Fatalf("method = %q, want %q", rec.method, tc.name)
			}
			if rec.runIters != res.Iterations {
				t.Fatalf("observer iterations = %d, Result.Iterations = %d", rec.runIters, res.Iterations)
			}
			if len(rec.iterations) != res.Iterations {
				t.Fatalf("%d iteration callbacks, want %d", len(rec.iterations), res.Iterations)
			}
			for i, it := range rec.iterSeq {
				if it != i+1 {
					t.Fatalf("iteration numbering %v not 1..n", rec.iterSeq)
				}
			}
			for _, d := range rec.iterations {
				if math.IsNaN(d) || d < 0 {
					t.Fatalf("bad convergence delta %v", d)
				}
			}
			if !rec.converged {
				t.Fatalf("run did not converge within the default cap (iters=%d)", res.Iterations)
			}
			if rec.wall < 0 {
				t.Fatalf("negative wall time %v", rec.wall)
			}
		})
	}
}

// TestEMObserverDoesNotChangeResults pins that instrumentation is purely
// observational: posteriors with and without an observer are bit-identical.
func TestEMObserverDoesNotChangeResults(t *testing.T) {
	_, ds := buildWorkload(78, 40, 12, 5, crowd.RegimeMixed, 0.3)
	plain, err := DawidSkene{}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := DawidSkene{Obs: &recordingObserver{}}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != observed.Iterations {
		t.Fatalf("iterations differ: %d vs %d", plain.Iterations, observed.Iterations)
	}
	for id, row := range plain.Posterior {
		orow := observed.Posterior[id]
		for c := range row {
			if math.Float64bits(row[c]) != math.Float64bits(orow[c]) {
				t.Fatalf("task %d class %d: %v vs %v", id, c, row[c], orow[c])
			}
		}
	}
}
