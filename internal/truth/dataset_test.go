package truth

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/crowd"
)

// TestAppendDeltaMatchesFromPool is the correctness contract of the
// incremental build: extending a dataset with the answers recorded since
// its snapshot must be indistinguishable — down to the dense CSR layout —
// from rebuilding with FromPool over the grown pool. Anything less and
// the incremental serving path could diverge from the full path.
func TestAppendDeltaMatchesFromPool(t *testing.T) {
	pool := core.NewPool()
	for i := 1; i <= 40; i++ {
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i), Kind: core.SingleChoice,
			Options: []string{"a", "b", "c"},
		})
	}
	for w := 0; w < 12; w++ {
		for i := 1; i <= 40; i++ {
			if (i+w)%3 == 0 {
				continue // uneven coverage
			}
			if err := pool.Record(core.Answer{
				Task: core.TaskID(i), Worker: fmt.Sprintf("base-w%d", w), Option: (i * (w + 1)) % 3,
			}); err != nil {
				t.Fatalf("seed record: %v", err)
			}
		}
	}
	base, err := FromPool(pool, pool.TaskIDs())
	if err != nil {
		t.Fatalf("FromPool: %v", err)
	}
	base.dense()

	// Grow the pool: existing workers answering unseen tasks, brand-new
	// workers (exercising the WorkerIDs merge), an out-of-range option
	// (dropped by FromPool and AppendDelta alike), and repeat growth on
	// the same task (exercising copy-on-write of an already-copied slice).
	var delta []core.Answer
	record := func(a core.Answer) {
		if err := pool.Record(a); err != nil {
			t.Fatalf("record: %v", err)
		}
		delta = append(delta, a)
	}
	record(core.Answer{Task: 1, Worker: "delta-w1", Option: 0})
	record(core.Answer{Task: 1, Worker: "delta-w0", Option: 1})
	record(core.Answer{Task: 2, Worker: "delta-w1", Option: 1})
	for i := 0; i < 5; i++ {
		record(core.Answer{Task: 3, Worker: fmt.Sprintf("delta-x%d", i), Option: i % 2})
	}
	// Out-of-range options never enter the pool via the serving layer,
	// but FromPool filters them, so AppendDelta must too.
	delta = append(delta, core.Answer{Task: 4, Worker: "delta-w1", Option: 3})

	baseAnswers := len(base.Answers[1])
	got, err := base.AppendDelta(delta)
	if err != nil {
		t.Fatalf("AppendDelta: %v", err)
	}
	want, err := FromPool(pool, pool.TaskIDs())
	if err != nil {
		t.Fatalf("FromPool: %v", err)
	}
	want.dense()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendDelta dataset differs from FromPool rebuild:\n got: %+v\nwant: %+v", got, want)
	}
	if len(base.Answers[1]) != baseAnswers {
		t.Fatal("AppendDelta mutated the base dataset")
	}

	// Same inference input ⇒ same inference output, bit for bit.
	for _, inf := range []Inferrer{MajorityVote{}, OneCoinEM{}, DawidSkene{}} {
		rg, err := inf.Infer(got)
		if err != nil {
			t.Fatalf("%s over delta dataset: %v", inf.Name(), err)
		}
		rw, err := inf.Infer(want)
		if err != nil {
			t.Fatalf("%s over rebuilt dataset: %v", inf.Name(), err)
		}
		if !reflect.DeepEqual(rg.Labels, rw.Labels) || !reflect.DeepEqual(rg.Posterior, rw.Posterior) {
			t.Fatalf("%s diverges between delta and rebuilt datasets", inf.Name())
		}
	}
}

func TestAppendDeltaRejectsUnknownTask(t *testing.T) {
	_, base := buildWorkload(12, 10, 6, 2, crowd.Mix{Reliable: 1}, 0.5)
	if _, err := base.AppendDelta([]core.Answer{{Task: 999, Worker: "w", Option: 0}}); err == nil {
		t.Fatal("delta answer for a task outside the dataset must error")
	}
}

func TestAppendDeltaEmptySharesLayout(t *testing.T) {
	_, base := buildWorkload(13, 10, 6, 2, crowd.Mix{Reliable: 1}, 0.5)
	nd, err := base.AppendDelta(nil)
	if err != nil {
		t.Fatalf("AppendDelta(nil): %v", err)
	}
	if &nd.TaskIDs[0] != &base.TaskIDs[0] || &nd.WorkerIDs[0] != &base.WorkerIDs[0] {
		t.Fatal("empty delta should share task and worker slices with the base")
	}
	if !reflect.DeepEqual(nd.Answers, base.Answers) {
		t.Fatal("empty delta changed the answer map")
	}
}
