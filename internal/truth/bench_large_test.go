package truth_test

// Large-kernel benchmarks live in an external test package so they can
// share seeded workload construction with cmd/benchrunner via
// internal/benchdata (an in-package test would create an import cycle).
// These are the headline perf numbers tracked across PRs in BENCH_pr*.json.

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/truth"
)

// largeDataset is the acceptance-scale workload: 2000 tasks, 50 workers,
// redundancy 5 (10k answers).
func largeDataset(b *testing.B) *truth.Dataset {
	b.Helper()
	_, ds := benchdata.ChoiceWorkload(4242, 2000, 50, 5, 0.3)
	b.ResetTimer()
	return ds
}

func BenchmarkDSLarge(b *testing.B) {
	ds := largeDataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := (truth.DawidSkene{}).Infer(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGLADLarge(b *testing.B) {
	ds := largeDataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := (truth.GLAD{}).Infer(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOneCoinEMLarge(b *testing.B) {
	ds := largeDataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := (truth.OneCoinEM{}).Infer(ds); err != nil {
			b.Fatal(err)
		}
	}
}
