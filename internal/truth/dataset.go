// Package truth implements truth inference for crowdsourced answers: given
// redundant noisy labels, estimate the true answer of every task and the
// quality of every worker.
//
// The methods span the taxonomy in the survey:
//
//   - MajorityVote / WeightedMajorityVote — direct aggregation.
//   - OneCoinEM — worker-probability model (ZenCrowd-style): one accuracy
//     parameter per worker, EM.
//   - DawidSkene — full per-worker confusion matrices, EM.
//   - GLAD — worker ability × task difficulty logistic model, EM with
//     gradient M-step.
//   - Numeric aggregation (mean / median / weighted mean) for rating tasks.
//
// All methods consume a Dataset, a normalized view of choice-task answers,
// and produce a Result containing posterior label distributions, hard
// labels, and per-worker quality estimates.
package truth

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Dataset is the input to inference: a set of choice-type tasks with the
// same option count, plus all collected answers for them.
type Dataset struct {
	// K is the number of options shared by every task in the dataset.
	K int
	// TaskIDs lists the tasks in a deterministic order.
	TaskIDs []core.TaskID
	// Answers maps each task to its recorded answers (option >= 0 only).
	Answers map[core.TaskID][]core.Answer
	// WorkerIDs lists every worker that answered at least one task,
	// sorted.
	WorkerIDs []string

	taskIndex   map[core.TaskID]int
	workerIndex map[string]int
}

// FromPool builds a Dataset from the choice-type tasks of a pool. Tasks
// with a different option count than the first task are rejected with an
// error (callers partition heterogeneous pools by option count first).
// Tasks with no answers are retained (their posterior will be the prior).
func FromPool(p *core.Pool, ids []core.TaskID) (*Dataset, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("truth: empty task set")
	}
	ds := &Dataset{
		Answers:     make(map[core.TaskID][]core.Answer, len(ids)),
		taskIndex:   make(map[core.TaskID]int, len(ids)),
		workerIndex: make(map[string]int),
	}
	workerSet := make(map[string]bool)
	for _, id := range ids {
		t := p.Task(id)
		if t == nil {
			return nil, fmt.Errorf("truth: unknown task %d", id)
		}
		switch t.Kind {
		case core.SingleChoice, core.MultiChoice, core.PairwiseComparison:
		default:
			return nil, fmt.Errorf("truth: task %d is %v, not choice-type", id, t.Kind)
		}
		k := len(t.Options)
		if ds.K == 0 {
			ds.K = k
		} else if k != ds.K {
			return nil, fmt.Errorf("truth: task %d has %d options, dataset has %d",
				id, k, ds.K)
		}
		ds.taskIndex[id] = len(ds.TaskIDs)
		ds.TaskIDs = append(ds.TaskIDs, id)
		for _, a := range p.Answers(id) {
			if a.Option < 0 || a.Option >= k {
				continue
			}
			ds.Answers[id] = append(ds.Answers[id], a)
			workerSet[a.Worker] = true
		}
	}
	for w := range workerSet {
		ds.WorkerIDs = append(ds.WorkerIDs, w)
	}
	sort.Strings(ds.WorkerIDs)
	for i, w := range ds.WorkerIDs {
		ds.workerIndex[w] = i
	}
	return ds, nil
}

// TaskIndex returns the dense index of a task id, or -1.
func (ds *Dataset) TaskIndex(id core.TaskID) int {
	if i, ok := ds.taskIndex[id]; ok {
		return i
	}
	return -1
}

// WorkerIndex returns the dense index of a worker id, or -1.
func (ds *Dataset) WorkerIndex(w string) int {
	if i, ok := ds.workerIndex[w]; ok {
		return i
	}
	return -1
}

// TotalAnswers returns the number of usable answers in the dataset.
func (ds *Dataset) TotalAnswers() int {
	n := 0
	for _, as := range ds.Answers {
		n += len(as)
	}
	return n
}

// Result is the output of an inference method.
type Result struct {
	// Method is the name of the inference method that produced this.
	Method string
	// Labels holds the hard (argmax) label per task.
	Labels map[core.TaskID]int
	// Posterior holds the per-option probability distribution per task.
	Posterior map[core.TaskID][]float64
	// WorkerQuality maps each worker to an estimated accuracy in [0,1].
	WorkerQuality map[string]float64
	// Iterations reports how many EM/gradient iterations ran (0 for
	// non-iterative methods).
	Iterations int

	// taskEasiness, when set (GLAD), maps dense task indices to the
	// inferred easiness parameter; read through TaskEasiness.
	taskEasiness map[int]float64
}

// TaskEasiness returns the inferred easiness of a task for methods that
// model difficulty (GLAD); ok is false otherwise.
func (r *Result) TaskEasiness(ds *Dataset, id core.TaskID) (float64, bool) {
	if r.taskEasiness == nil {
		return 0, false
	}
	ti := ds.TaskIndex(id)
	if ti < 0 {
		return 0, false
	}
	v, ok := r.taskEasiness[ti]
	return v, ok
}

// Confidence returns the posterior mass of the chosen label for a task
// (0 when the task is unknown).
func (r *Result) Confidence(id core.TaskID) float64 {
	post, ok := r.Posterior[id]
	if !ok {
		return 0
	}
	lbl := r.Labels[id]
	if lbl < 0 || lbl >= len(post) {
		return 0
	}
	return post[lbl]
}

// Inferrer is a truth-inference method over choice-task datasets.
type Inferrer interface {
	// Name returns the method's display name.
	Name() string
	// Infer estimates labels and worker qualities for the dataset.
	Infer(ds *Dataset) (*Result, error)
}

// newResult allocates a Result shell for the dataset.
func newResult(method string, ds *Dataset) *Result {
	return &Result{
		Method:        method,
		Labels:        make(map[core.TaskID]int, len(ds.TaskIDs)),
		Posterior:     make(map[core.TaskID][]float64, len(ds.TaskIDs)),
		WorkerQuality: make(map[string]float64, len(ds.WorkerIDs)),
	}
}

// Accuracy compares inferred labels with the pool's planted ground truth
// over the dataset's tasks and returns the fraction correct. Tasks with
// GroundTruth < 0 are skipped.
func Accuracy(r *Result, p *core.Pool, ds *Dataset) float64 {
	total, correct := 0, 0
	for _, id := range ds.TaskIDs {
		t := p.Task(id)
		if t == nil || t.GroundTruth < 0 {
			continue
		}
		total++
		if r.Labels[id] == t.GroundTruth {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
