// Package truth implements truth inference for crowdsourced answers: given
// redundant noisy labels, estimate the true answer of every task and the
// quality of every worker.
//
// The methods span the taxonomy in the survey:
//
//   - MajorityVote / WeightedMajorityVote — direct aggregation.
//   - OneCoinEM — worker-probability model (ZenCrowd-style): one accuracy
//     parameter per worker, EM.
//   - DawidSkene — full per-worker confusion matrices, EM.
//   - GLAD — worker ability × task difficulty logistic model, EM with
//     gradient M-step.
//   - Numeric aggregation (mean / median / weighted mean) for rating tasks.
//
// All methods consume a Dataset, a normalized view of choice-task answers,
// and produce a Result containing posterior label distributions, hard
// labels, and per-worker quality estimates.
package truth

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Dataset is the input to inference: a set of choice-type tasks with the
// same option count, plus all collected answers for them.
type Dataset struct {
	// K is the number of options shared by every task in the dataset.
	K int
	// TaskIDs lists the tasks in a deterministic order.
	TaskIDs []core.TaskID
	// Answers maps each task to its recorded answers (option >= 0 only).
	Answers map[core.TaskID][]core.Answer
	// WorkerIDs lists every worker that answered at least one task,
	// sorted.
	WorkerIDs []string

	taskIndex   map[core.TaskID]int
	workerIndex map[string]int

	// Dense CSR-style answer layout, built once by FromPool. The EM
	// kernels iterate these flat slices instead of resolving map lookups
	// per answer per iteration.
	//
	// refs holds every usable answer in task-major order: all answers of
	// task 0 (in recorded order), then task 1, and so on.
	// taskOff[ti]..taskOff[ti+1] delimit task ti's answers within refs.
	//
	// wAns/wOff are the worker-major view: wAns[wOff[wi]..wOff[wi+1]]
	// lists the flat refs positions of worker wi's answers in ascending
	// position (= task) order. Per-worker statistics computed over this
	// view accumulate in exactly the task order a serial task-major sweep
	// would use, which is what makes the sharded M-steps bit-identical to
	// the serial path.
	refs    []answerRef
	taskOff []int32
	wAns    []int32
	wOff    []int32
}

// answerRef is one answer in the dense layout: indices instead of IDs.
type answerRef struct {
	task   int32
	worker int32
	option int32
}

// Source is the read surface FromPool consumes: task lookup and recorded
// answers. *core.Pool satisfies it directly; a sharded serving layer
// satisfies it with a view that routes each id to the owning shard, so
// inference never needs the answers merged into one pool first.
type Source interface {
	Task(id core.TaskID) *core.Task
	Answers(id core.TaskID) []core.Answer
}

// FromPool builds a Dataset from the choice-type tasks of a pool. Tasks
// with a different option count than the first task are rejected with an
// error (callers partition heterogeneous pools by option count first).
// Tasks with no answers are retained (their posterior will be the prior).
func FromPool(p Source, ids []core.TaskID) (*Dataset, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("truth: empty task set")
	}
	ds := &Dataset{
		Answers:     make(map[core.TaskID][]core.Answer, len(ids)),
		taskIndex:   make(map[core.TaskID]int, len(ids)),
		workerIndex: make(map[string]int),
	}
	workerSet := make(map[string]bool)
	for _, id := range ids {
		t := p.Task(id)
		if t == nil {
			return nil, fmt.Errorf("truth: unknown task %d", id)
		}
		switch t.Kind {
		case core.SingleChoice, core.MultiChoice, core.PairwiseComparison:
		default:
			return nil, fmt.Errorf("truth: task %d is %v, not choice-type", id, t.Kind)
		}
		k := len(t.Options)
		if ds.K == 0 {
			ds.K = k
		} else if k != ds.K {
			return nil, fmt.Errorf("truth: task %d has %d options, dataset has %d",
				id, k, ds.K)
		}
		ds.taskIndex[id] = len(ds.TaskIDs)
		ds.TaskIDs = append(ds.TaskIDs, id)
		for _, a := range p.Answers(id) {
			if a.Option < 0 || a.Option >= k {
				continue
			}
			ds.Answers[id] = append(ds.Answers[id], a)
			workerSet[a.Worker] = true
		}
	}
	for w := range workerSet {
		ds.WorkerIDs = append(ds.WorkerIDs, w)
	}
	sort.Strings(ds.WorkerIDs)
	for i, w := range ds.WorkerIDs {
		ds.workerIndex[w] = i
	}
	ds.buildDense()
	return ds, nil
}

// buildDense populates the flat task-major and worker-major answer
// layouts from Answers. FromPool calls it once; dense() rebuilds lazily
// for datasets assembled by hand in tests.
func (ds *Dataset) buildDense() {
	total := 0
	for _, as := range ds.Answers {
		total += len(as)
	}
	ds.refs = make([]answerRef, 0, total)
	ds.taskOff = make([]int32, len(ds.TaskIDs)+1)
	for ti, id := range ds.TaskIDs {
		ds.taskOff[ti] = int32(len(ds.refs))
		for _, a := range ds.Answers[id] {
			ds.refs = append(ds.refs, answerRef{
				task:   int32(ti),
				worker: int32(ds.workerIndex[a.Worker]),
				option: int32(a.Option),
			})
		}
	}
	ds.taskOff[len(ds.TaskIDs)] = int32(len(ds.refs))

	// Worker-major view via a counting sort over worker indices: stable,
	// so each worker's positions stay in ascending (task-major) order.
	ds.wOff = make([]int32, len(ds.WorkerIDs)+1)
	for _, r := range ds.refs {
		ds.wOff[r.worker+1]++
	}
	for wi := 0; wi < len(ds.WorkerIDs); wi++ {
		ds.wOff[wi+1] += ds.wOff[wi]
	}
	ds.wAns = make([]int32, len(ds.refs))
	next := make([]int32, len(ds.WorkerIDs))
	copy(next, ds.wOff[:len(ds.WorkerIDs)])
	for p, r := range ds.refs {
		ds.wAns[next[r.worker]] = int32(p)
		next[r.worker]++
	}
}

// AppendDelta returns a new Dataset equal to what FromPool would build
// over the same task set after delta was appended to the pool: the
// incremental path of a results endpoint, where a snapshot under the pool
// locks copies only the answers recorded since the previous refresh and
// the flat layout is rebuilt outside any lock. The receiver is not
// mutated and stays valid (cached Results keep aliasing it).
//
// delta must hold only answers for tasks already in ds, in per-task
// arrival order (the order the pool appends them); answers whose option
// is outside [0, K) are dropped, exactly as FromPool drops them. An
// answer for an unknown task is an error — task-set changes require a
// full FromPool rebuild.
func (ds *Dataset) AppendDelta(delta []core.Answer) (*Dataset, error) {
	ds.dense()
	nd := &Dataset{
		K:         ds.K,
		TaskIDs:   ds.TaskIDs, // task set unchanged by construction
		taskIndex: ds.taskIndex,
		Answers:   make(map[core.TaskID][]core.Answer, len(ds.Answers)),
	}
	for id, as := range ds.Answers {
		nd.Answers[id] = as // shared until a delta answer touches the task
	}
	var newWorkers []string
	for _, a := range delta {
		if _, ok := ds.taskIndex[a.Task]; !ok {
			return nil, fmt.Errorf("truth: delta answer for task %d outside the dataset", a.Task)
		}
		if a.Option < 0 || a.Option >= ds.K {
			continue
		}
		// Copy-on-write: the base slice may be shared with the receiver
		// (and with other datasets derived from it), so the first append
		// to a task clones its slice.
		if cur, base := nd.Answers[a.Task], ds.Answers[a.Task]; len(cur) == len(base) {
			nd.Answers[a.Task] = append(append(make([]core.Answer, 0, len(base)+4), base...), a)
		} else {
			nd.Answers[a.Task] = append(cur, a)
		}
		if _, ok := ds.workerIndex[a.Worker]; !ok {
			newWorkers = append(newWorkers, a.Worker)
		}
	}
	if len(newWorkers) == 0 {
		nd.WorkerIDs = ds.WorkerIDs
		nd.workerIndex = ds.workerIndex
	} else {
		sort.Strings(newWorkers)
		nd.WorkerIDs = make([]string, 0, len(ds.WorkerIDs)+len(newWorkers))
		nd.WorkerIDs = append(nd.WorkerIDs, ds.WorkerIDs...)
		prev := ""
		for i, w := range newWorkers {
			if i > 0 && w == prev {
				continue // same new worker in several delta answers
			}
			prev = w
			nd.WorkerIDs = append(nd.WorkerIDs, w)
		}
		sort.Strings(nd.WorkerIDs)
		nd.workerIndex = make(map[string]int, len(nd.WorkerIDs))
		for i, w := range nd.WorkerIDs {
			nd.workerIndex[w] = i
		}
	}
	nd.buildDense()
	return nd, nil
}

// dense ensures the flat layout exists (it always does for FromPool
// datasets). The lazy rebuild is not safe for concurrent first use.
func (ds *Dataset) dense() {
	if ds.taskOff != nil {
		return
	}
	if ds.workerIndex == nil {
		ds.workerIndex = make(map[string]int, len(ds.WorkerIDs))
		for i, w := range ds.WorkerIDs {
			ds.workerIndex[w] = i
		}
	}
	ds.buildDense()
}

// TaskIndex returns the dense index of a task id, or -1.
func (ds *Dataset) TaskIndex(id core.TaskID) int {
	if i, ok := ds.taskIndex[id]; ok {
		return i
	}
	return -1
}

// WorkerIndex returns the dense index of a worker id, or -1.
func (ds *Dataset) WorkerIndex(w string) int {
	if i, ok := ds.workerIndex[w]; ok {
		return i
	}
	return -1
}

// TotalAnswers returns the number of usable answers in the dataset.
func (ds *Dataset) TotalAnswers() int {
	n := 0
	for _, as := range ds.Answers {
		n += len(as)
	}
	return n
}

// Result is the output of an inference method.
type Result struct {
	// Method is the name of the inference method that produced this.
	Method string
	// Labels holds the hard (argmax) label per task.
	Labels map[core.TaskID]int
	// Posterior holds the per-option probability distribution per task.
	Posterior map[core.TaskID][]float64
	// WorkerQuality maps each worker to an estimated accuracy in [0,1].
	WorkerQuality map[string]float64
	// Iterations reports how many EM/gradient iterations ran (0 for
	// non-iterative methods).
	Iterations int
	// Warm carries the run's final parameters for warm-starting the next
	// run of the same method over an evolved answer set; nil for
	// non-iterative methods. See WarmState.
	Warm *WarmState

	// taskEasiness, when set (GLAD), maps dense task indices to the
	// inferred easiness parameter; read through TaskEasiness.
	taskEasiness map[int]float64
}

// TaskEasiness returns the inferred easiness of a task for methods that
// model difficulty (GLAD); ok is false otherwise.
func (r *Result) TaskEasiness(ds *Dataset, id core.TaskID) (float64, bool) {
	if r.taskEasiness == nil {
		return 0, false
	}
	ti := ds.TaskIndex(id)
	if ti < 0 {
		return 0, false
	}
	v, ok := r.taskEasiness[ti]
	return v, ok
}

// Confidence returns the posterior mass of the chosen label for a task
// (0 when the task is unknown).
func (r *Result) Confidence(id core.TaskID) float64 {
	post, ok := r.Posterior[id]
	if !ok {
		return 0
	}
	lbl := r.Labels[id]
	if lbl < 0 || lbl >= len(post) {
		return 0
	}
	return post[lbl]
}

// Inferrer is a truth-inference method over choice-task datasets.
type Inferrer interface {
	// Name returns the method's display name.
	Name() string
	// Infer estimates labels and worker qualities for the dataset.
	Infer(ds *Dataset) (*Result, error)
}

// newResult allocates a Result shell for the dataset.
func newResult(method string, ds *Dataset) *Result {
	return &Result{
		Method:        method,
		Labels:        make(map[core.TaskID]int, len(ds.TaskIDs)),
		Posterior:     make(map[core.TaskID][]float64, len(ds.TaskIDs)),
		WorkerQuality: make(map[string]float64, len(ds.WorkerIDs)),
	}
}

// Accuracy compares inferred labels with the pool's planted ground truth
// over the dataset's tasks and returns the fraction correct. Tasks with
// GroundTruth < 0 are skipped.
func Accuracy(r *Result, p *core.Pool, ds *Dataset) float64 {
	total, correct := 0, 0
	for _, id := range ds.TaskIDs {
		t := p.Task(id)
		if t == nil || t.GroundTruth < 0 {
			continue
		}
		total++
		if r.Labels[id] == t.GroundTruth {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
