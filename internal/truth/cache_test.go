package truth

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestResultCacheVersionKeying(t *testing.T) {
	c := NewResultCache()
	key := ResultKey{Method: "mv", K: 2}
	r1 := &Result{Method: "mv", Labels: map[core.TaskID]int{1: 0}}
	c.Put(key, CacheEntry{Version: 7, Res: r1})
	if got, ok := c.Get(key, 7); !ok || got != r1 {
		t.Fatal("exact-version lookup missed")
	}
	if _, ok := c.Get(key, 8); ok {
		t.Fatal("stale version served")
	}
	if _, ok := c.Get(ResultKey{Method: "ds", K: 2}, 7); ok {
		t.Fatal("wrong key served")
	}
	// A newer Put replaces the entry for the same key.
	r2 := &Result{Method: "mv", Labels: map[core.TaskID]int{1: 1}}
	c.Put(key, CacheEntry{Version: 8, Res: r2})
	if _, ok := c.Get(key, 7); ok {
		t.Fatal("replaced entry still served at old version")
	}
	if got, ok := c.Get(key, 8); !ok || got != r2 {
		t.Fatal("replacement entry missed")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestResultCacheLatestAndMonotonicPut(t *testing.T) {
	c := NewResultCache()
	key := ResultKey{Method: "onecoin", K: 3}
	if _, ok := c.Latest(key); ok {
		t.Fatal("empty cache served a latest entry")
	}
	r8 := &Result{Method: "OneCoinEM"}
	c.Put(key, CacheEntry{Version: 8, Shards: []uint64{5, 3}, Res: r8})
	e, ok := c.Latest(key)
	if !ok || e.Res != r8 || e.Version != 8 {
		t.Fatalf("Latest = (%+v, %v), want version-8 entry", e, ok)
	}
	// A slow computation finishing late must not roll the cache back.
	c.Put(key, CacheEntry{Version: 7, Res: &Result{Method: "OneCoinEM"}})
	if e, _ := c.Latest(key); e.Version != 8 || e.Res != r8 {
		t.Fatal("older Put clobbered a newer entry")
	}
	// Same-version Put replaces (refresh of an equal snapshot).
	r8b := &Result{Method: "OneCoinEM"}
	c.Put(key, CacheEntry{Version: 8, Res: r8b})
	if e, _ := c.Latest(key); e.Res != r8b {
		t.Fatal("same-version Put did not replace")
	}
	// Entries without a result are dropped.
	c.Put(key, CacheEntry{Version: 99})
	if e, _ := c.Latest(key); e.Version != 8 {
		t.Fatal("nil-result Put was stored")
	}
}

func TestResultCacheNilDisablesMemoization(t *testing.T) {
	var c *ResultCache
	key := ResultKey{Method: "mv", K: 2}
	c.Put(key, CacheEntry{Version: 1, Res: &Result{}})
	if _, ok := c.Get(key, 1); ok {
		t.Fatal("nil cache served an entry")
	}
	if _, ok := c.Latest(key); ok {
		t.Fatal("nil cache served a latest entry")
	}
	if c.Len() != 0 {
		t.Fatalf("nil cache Len = %d", c.Len())
	}
}

func TestResultCacheConcurrentAccess(t *testing.T) {
	c := NewResultCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := ResultKey{Method: "mv", K: g % 4}
			for i := 0; i < 200; i++ {
				c.Put(key, CacheEntry{Version: uint64(i), Res: &Result{Method: "mv"}})
				if res, ok := c.Get(key, uint64(i)); ok && res == nil {
					t.Error("cache returned nil result on hit")
					return
				}
				if e, ok := c.Latest(key); ok && e.Res == nil {
					t.Error("cache returned nil latest result")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}

// The serving hot path builds a ResultKey and probes the cache on every
// poll; both must stay allocation-free.
func TestResultCacheKeyZeroAlloc(t *testing.T) {
	c := NewResultCache()
	c.Put(ResultKey{Method: "ds", K: 4}, CacheEntry{Version: 3, Res: &Result{}})
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := c.Get(ResultKey{Method: "ds", K: 4}, 3); !ok {
			t.Fatal("lookup missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache Get allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkResultCacheGet(b *testing.B) {
	c := NewResultCache()
	c.Put(ResultKey{Method: "ds", K: 4}, CacheEntry{Version: 3, Res: &Result{}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(ResultKey{Method: "ds", K: 4}, 3); !ok {
			b.Fatal("lookup missed")
		}
	}
}
