package truth

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestResultCacheVersionKeying(t *testing.T) {
	c := NewResultCache()
	r1 := &Result{Method: "mv", Labels: map[core.TaskID]int{1: 0}}
	c.Put("mv/k=2", 7, r1)
	if got, ok := c.Get("mv/k=2", 7); !ok || got != r1 {
		t.Fatal("exact-version lookup missed")
	}
	if _, ok := c.Get("mv/k=2", 8); ok {
		t.Fatal("stale version served")
	}
	if _, ok := c.Get("ds/k=2", 7); ok {
		t.Fatal("wrong key served")
	}
	// A newer Put replaces the entry for the same key.
	r2 := &Result{Method: "mv", Labels: map[core.TaskID]int{1: 1}}
	c.Put("mv/k=2", 8, r2)
	if _, ok := c.Get("mv/k=2", 7); ok {
		t.Fatal("replaced entry still served at old version")
	}
	if got, ok := c.Get("mv/k=2", 8); !ok || got != r2 {
		t.Fatal("replacement entry missed")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestResultCacheNilDisablesMemoization(t *testing.T) {
	var c *ResultCache
	c.Put("mv/k=2", 1, &Result{})
	if _, ok := c.Get("mv/k=2", 1); ok {
		t.Fatal("nil cache served an entry")
	}
	if c.Len() != 0 {
		t.Fatalf("nil cache Len = %d", c.Len())
	}
}

func TestResultCacheConcurrentAccess(t *testing.T) {
	c := NewResultCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("mv/k=%d", g%4)
			for i := 0; i < 200; i++ {
				c.Put(key, uint64(i), &Result{Method: "mv"})
				if res, ok := c.Get(key, uint64(i)); ok && res == nil {
					t.Error("cache returned nil result on hit")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}
