package truth

import "repro/internal/core"

// WarmState carries the converged parameters of one inference run forward
// into the next, so steady-state serving re-estimates from where the last
// run stopped instead of from scratch. The truth-inference loop of the
// survey is iterative by design — answers stream in, estimates are
// refined — and between two refreshes the answer set typically changes by
// a small delta, so the previous fixed point is an excellent starting
// point: EM from a warm seed converges in a handful of iterations where a
// cold start pays the full schedule.
//
// All state is keyed by task and worker ID (never by dense index), so a
// warm state produced over one Dataset seeds any later Dataset for the
// same (method, option-count) group even after new tasks, new workers, or
// new answers appeared: entities unknown to the warm state fall back to
// the cold initialization, entity by entity.
//
// A WarmState is immutable once produced (its maps may alias the
// producing Result's), and seeding never mutates it, so one state may
// seed concurrent runs. Every iterative Infer sets Result.Warm; callers
// that do not want warm starting simply never pass it back in.
type WarmState struct {
	// Method names the producing kernel (Inferrer.Name). Kernels ignore a
	// warm state from a different method: the posterior semantics agree,
	// but the auxiliary parameters (confusion vs. ability) do not.
	Method string
	// K is the option count the state was estimated at. A mismatched K
	// invalidates the whole state.
	K int
	// Posterior maps each task to its label distribution (length K) at
	// the end of the producing run.
	Posterior map[core.TaskID][]float64
	// Alpha maps workers to GLAD ability parameters (GLAD only).
	Alpha map[string]float64
	// LogBeta maps tasks to GLAD log-easiness parameters (GLAD only).
	LogBeta map[core.TaskID]float64
}

// usable reports whether the state can seed a run of the given method
// over ds.
func (ws *WarmState) usable(method string, ds *Dataset) bool {
	return ws != nil && ws.Method == method && ws.K == ds.K && len(ws.Posterior) > 0
}

// seedPosteriors fills the flat posterior slab from the warm state where
// it knows the task, with the cold per-task initialization (normalized
// vote fractions, uniform when unanswered) as the fallback; warm == nil
// is exactly the cold start. It reports whether any warm row was used.
func seedPosteriors(ds *Dataset, post []float64, method string, warm *WarmState) bool {
	if !warm.usable(method, ds) {
		initPosteriorsInto(ds, post)
		return false
	}
	K := ds.K
	hit := false
	for ti, id := range ds.TaskIDs {
		row := post[ti*K : ti*K+K]
		if prev, ok := warm.Posterior[id]; ok && len(prev) == K {
			copy(row, prev)
			hit = true
			continue
		}
		initPosteriorRow(ds, ti, row)
	}
	return hit
}
