package truth

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// MajorityVote labels each task with its most-voted option. Ties resolve
// to the lowest option index for determinism. Worker quality is estimated
// post hoc as each worker's agreement rate with the majority labels.
type MajorityVote struct{}

// Name implements Inferrer.
func (MajorityVote) Name() string { return "MV" }

// Infer implements Inferrer.
func (MajorityVote) Infer(ds *Dataset) (*Result, error) {
	res := newResult("MV", ds)
	for _, id := range ds.TaskIDs {
		votes := make([]float64, ds.K)
		for _, a := range ds.Answers[id] {
			votes[a.Option]++
		}
		post := append([]float64(nil), votes...)
		stats.Normalize(post)
		res.Posterior[id] = post
		res.Labels[id] = stats.ArgMax(votes)
		if res.Labels[id] < 0 {
			res.Labels[id] = 0
		}
	}
	agreementQuality(ds, res)
	return res, nil
}

// WeightedMajorityVote weighs each worker's vote by a supplied weight
// (e.g. golden-task accuracy or a prior reputation score). Workers absent
// from Weights get DefaultWeight.
type WeightedMajorityVote struct {
	Weights       map[string]float64
	DefaultWeight float64
}

// Name implements Inferrer.
func (WeightedMajorityVote) Name() string { return "WMV" }

// Infer implements Inferrer.
func (v WeightedMajorityVote) Infer(ds *Dataset) (*Result, error) {
	def := v.DefaultWeight
	if def <= 0 {
		def = 0.5
	}
	res := newResult("WMV", ds)
	for _, id := range ds.TaskIDs {
		votes := make([]float64, ds.K)
		for _, a := range ds.Answers[id] {
			w, ok := v.Weights[a.Worker]
			if !ok {
				w = def
			}
			if w < 0 {
				return nil, fmt.Errorf("truth: negative weight %v for worker %s", w, a.Worker)
			}
			votes[a.Option] += w
		}
		post := append([]float64(nil), votes...)
		stats.Normalize(post)
		res.Posterior[id] = post
		res.Labels[id] = stats.ArgMax(votes)
		if res.Labels[id] < 0 {
			res.Labels[id] = 0
		}
	}
	agreementQuality(ds, res)
	return res, nil
}

// agreementQuality fills res.WorkerQuality with each worker's rate of
// agreement with the inferred hard labels — the cheap post-hoc quality
// estimate used by voting methods.
func agreementQuality(ds *Dataset, res *Result) {
	agree := make(map[string]int, len(ds.WorkerIDs))
	total := make(map[string]int, len(ds.WorkerIDs))
	for _, id := range ds.TaskIDs {
		for _, a := range ds.Answers[id] {
			total[a.Worker]++
			if a.Option == res.Labels[id] {
				agree[a.Worker]++
			}
		}
	}
	for _, w := range ds.WorkerIDs {
		if total[w] == 0 {
			res.WorkerQuality[w] = 0.5
			continue
		}
		res.WorkerQuality[w] = float64(agree[w]) / float64(total[w])
	}
}

// GoldenWeights derives a WeightedMajorityVote weight map from a
// WorkerScreen's golden-task observations: weight = max(acc, floor).
func GoldenWeights(screen *core.WorkerScreen, workers []string, floor float64) map[string]float64 {
	out := make(map[string]float64, len(workers))
	for _, w := range workers {
		acc, n := screen.Accuracy(w)
		if n == 0 {
			out[w] = 0.5
			continue
		}
		if acc < floor {
			acc = floor
		}
		out[w] = acc
	}
	return out
}
