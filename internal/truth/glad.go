package truth

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// GLAD implements the Whitehill et al. model: the probability that worker
// w answers a task t correctly is sigmoid(alpha_w * beta_t), where alpha
// is worker ability and beta > 0 is task easiness (parameterized as
// exp(b) for unconstrained optimization). Wrong answers spread uniformly
// over the remaining K-1 options. Estimation is EM with a gradient-ascent
// M-step and Gaussian priors alpha ~ N(1,1), b ~ N(0,1).
//
// The gradient M-step runs in two sharded passes: a task-major pass that
// stores each answer's gradient contribution in a flat per-answer scratch
// slab and accumulates the per-task easiness gradients, then a
// worker-major pass that folds the per-answer contributions into each
// worker's ability gradient in task order. No floating-point accumulator
// crosses a shard boundary, so results are bit-identical to the serial
// path at any GOMAXPROCS.
type GLAD struct {
	MaxIter   int
	Tol       float64
	GradSteps int     // gradient steps per M-step (default 10)
	LearnRate float64 // default 0.05
	// Obs follows the same contract as OneCoinEM.Obs (nil = free).
	Obs obs.EMObserver
	// Warm follows the same contract as OneCoinEM.Warm; GLAD additionally
	// seeds worker abilities and task easiness from the state, since its
	// gradient M-step continues from the current parameters instead of
	// re-deriving them from the posteriors.
	Warm *WarmState
}

// Name implements Inferrer.
func (GLAD) Name() string { return "GLAD" }

// Infer implements Inferrer.
func (m GLAD) Infer(ds *Dataset) (*Result, error) {
	maxIter, tol := m.MaxIter, m.Tol
	if maxIter <= 0 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = defaultTol
	}
	gradSteps := m.GradSteps
	if gradSteps <= 0 {
		gradSteps = 10
	}
	lr := m.LearnRate
	if lr <= 0 {
		lr = 0.3
	}
	ds.dense()
	n, nw, K := len(ds.TaskIDs), len(ds.WorkerIDs), ds.K
	km1 := float64(K - 1)
	workers := kernelWorkers(len(ds.refs))

	post := make([]float64, n*K)
	warmed := seedPosteriors(ds, post, "GLAD", m.Warm)
	alpha := make([]float64, nw) // worker abilities
	for i := range alpha {
		alpha[i] = 1
	}
	logBeta := make([]float64, n) // task log-easiness
	if warmed {
		for wi, w := range ds.WorkerIDs {
			if a, ok := m.Warm.Alpha[w]; ok {
				alpha[wi] = a
			}
		}
		for ti, id := range ds.TaskIDs {
			if b, ok := m.Warm.LogBeta[id]; ok {
				logBeta[ti] = b
			}
		}
	}
	// The class prior stays fixed and uniform, as in the original GLAD
	// model. Re-estimating it is unidentifiable at low redundancy: a
	// slight imbalance feeds back through the E-step and collapses every
	// label onto one class.
	logPrior := make([]float64, K)
	for c := range logPrior {
		logPrior[c] = math.Log(1/float64(K) + 1e-300)
	}

	// Scratch reused across every gradient step and iteration.
	aContrib := make([]float64, len(ds.refs)) // per-answer gradX·beta
	gBeta := make([]float64, n)
	deltas := make([]float64, n)
	scratch := make([]float64, workers*2*K)

	var start time.Time
	if m.Obs != nil {
		start = time.Now()
	}
	converged := false
	iters := 0
	for ; iters < maxIter; iters++ {
		// M-step: gradient ascent on the expected complete log-likelihood
		// with respect to alpha and logBeta. Data gradients are averaged
		// per parameter (each worker/task sees a mean over its answers) so
		// step sizes stay bounded regardless of answer counts.
		for step := 0; step < gradSteps; step++ {
			// Pass 1 (task-major): per-answer gradient contributions and
			// per-task easiness gradients.
			parallelFor(workers, n, func(_, lo, hi int) {
				for ti := lo; ti < hi; ti++ {
					beta := math.Exp(logBeta[ti])
					row := post[ti*K : ti*K+K]
					gB := 0.0
					for p := ds.taskOff[ti]; p < ds.taskOff[ti+1]; p++ {
						r := &ds.refs[p]
						a := alpha[r.worker]
						s := sigmoid(a * beta)
						// d/dx of expected log-likelihood contribution.
						gradX := 0.0
						opt := int(r.option)
						for c := 0; c < K; c++ {
							q := row[c]
							if q == 0 {
								continue
							}
							if opt == c {
								gradX += q * (1 - s)
							} else {
								gradX -= q * s
							}
						}
						aContrib[p] = gradX * beta
						gB += gradX * a * beta
					}
					gBeta[ti] = gB
				}
			})
			// Pass 2 (worker-major): ability gradients and updates.
			parallelFor(workers, nw, func(_, lo, hi int) {
				for wi := lo; wi < hi; wi++ {
					g := -(alpha[wi] - 1) * 0.1 // weak Gaussian prior toward 1
					if cnt := ds.wOff[wi+1] - ds.wOff[wi]; cnt > 0 {
						sum := 0.0
						for _, p := range ds.wAns[ds.wOff[wi]:ds.wOff[wi+1]] {
							sum += aContrib[p]
						}
						g += sum / float64(cnt)
					}
					alpha[wi] = clamp(alpha[wi]+lr*g, -6, 6)
				}
			})
			// Easiness updates: per task, O(n) serial.
			for ti := 0; ti < n; ti++ {
				g := -logBeta[ti] * 0.1 // weak Gaussian prior toward 0
				if cnt := ds.taskOff[ti+1] - ds.taskOff[ti]; cnt > 0 {
					g += gBeta[ti] / float64(cnt)
				}
				logBeta[ti] = clamp(logBeta[ti]+lr*g, -3, 3)
			}
		}

		// E-step.
		parallelFor(workers, n, func(slot, lo, hi int) {
			buf := scratch[slot*2*K:]
			logp, np := buf[:K], buf[K:2*K]
			for ti := lo; ti < hi; ti++ {
				beta := math.Exp(logBeta[ti])
				copy(logp, logPrior)
				for p := ds.taskOff[ti]; p < ds.taskOff[ti+1]; p++ {
					r := &ds.refs[p]
					s := clamp(sigmoid(alpha[r.worker]*beta), 1e-9, 1-1e-9)
					ls, lw := math.Log(s), math.Log((1-s)/km1)
					opt := int(r.option)
					for c := 0; c < K; c++ {
						if c == opt {
							logp[c] += ls
						} else {
							logp[c] += lw
						}
					}
				}
				softmaxInto(np, logp)
				deltas[ti] = replaceRow(post[ti*K:ti*K+K], np)
			}
		})
		delta := sumSerial(deltas)
		if m.Obs != nil {
			m.Obs.ObserveEMIteration("GLAD", iters+1, delta)
		}
		if delta < tol*float64(n) {
			iters++
			converged = true
			break
		}
	}
	if m.Obs != nil {
		m.Obs.ObserveEMRun("GLAD", iters, converged, time.Since(start))
	}

	// Worker quality: average modeled correctness over the tasks each
	// worker actually answered. Iterations reports EM rounds, consistent
	// with the other EM methods (gradient steps are internal).
	quality := make([]float64, nw)
	betas := make([]float64, n)
	for ti := range betas {
		betas[ti] = math.Exp(logBeta[ti])
	}
	for wi := range quality {
		lo, hi := ds.wOff[wi], ds.wOff[wi+1]
		if lo == hi {
			quality[wi] = 0.5
			continue
		}
		sum := 0.0
		for _, p := range ds.wAns[lo:hi] {
			sum += sigmoid(alpha[wi] * betas[ds.refs[p].task])
		}
		quality[wi] = sum / float64(hi-lo)
	}
	res := packResult("GLAD", ds, post, quality, iters)
	// Expose inferred difficulty for diagnostics via TaskEasiness.
	res.taskEasiness = make(map[int]float64, n)
	for ti, b := range betas {
		res.taskEasiness[ti] = b
	}
	warm := &WarmState{
		Method: "GLAD", K: K, Posterior: res.Posterior,
		Alpha:   make(map[string]float64, nw),
		LogBeta: make(map[core.TaskID]float64, n),
	}
	for wi, w := range ds.WorkerIDs {
		warm.Alpha[w] = alpha[wi]
	}
	for ti, id := range ds.TaskIDs {
		warm.LogBeta[id] = logBeta[ti]
	}
	res.Warm = warm
	return res, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
