package truth

import "math"

// GLAD implements the Whitehill et al. model: the probability that worker
// w answers a task t correctly is sigmoid(alpha_w * beta_t), where alpha
// is worker ability and beta > 0 is task easiness (parameterized as
// exp(b) for unconstrained optimization). Wrong answers spread uniformly
// over the remaining K-1 options. Estimation is EM with a gradient-ascent
// M-step and Gaussian priors alpha ~ N(1,1), b ~ N(0,1).
type GLAD struct {
	MaxIter   int
	Tol       float64
	GradSteps int     // gradient steps per M-step (default 10)
	LearnRate float64 // default 0.05
}

// Name implements Inferrer.
func (GLAD) Name() string { return "GLAD" }

// Infer implements Inferrer.
func (m GLAD) Infer(ds *Dataset) (*Result, error) {
	maxIter, tol := m.MaxIter, m.Tol
	if maxIter <= 0 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = defaultTol
	}
	gradSteps := m.GradSteps
	if gradSteps <= 0 {
		gradSteps = 10
	}
	lr := m.LearnRate
	if lr <= 0 {
		lr = 0.3
	}
	km1 := float64(ds.K - 1)

	post := initPosteriors(ds)
	alpha := make([]float64, len(ds.WorkerIDs)) // worker abilities
	for i := range alpha {
		alpha[i] = 1
	}
	logBeta := make([]float64, len(ds.TaskIDs)) // task log-easiness
	// The class prior stays fixed and uniform, as in the original GLAD
	// model. Re-estimating it is unidentifiable at low redundancy: a
	// slight imbalance feeds back through the E-step and collapses every
	// label onto one class.
	prior := make([]float64, ds.K)
	for c := range prior {
		prior[c] = 1 / float64(ds.K)
	}

	iters := 0
	for ; iters < maxIter; iters++ {
		// M-step: gradient ascent on the expected complete log-likelihood
		// with respect to alpha and logBeta. Data gradients are averaged
		// per parameter (each worker/task sees a mean over its answers) so
		// step sizes stay bounded regardless of answer counts.
		for step := 0; step < gradSteps; step++ {
			gAlpha := make([]float64, len(alpha))
			gBeta := make([]float64, len(logBeta))
			nAlpha := make([]float64, len(alpha))
			nBeta := make([]float64, len(logBeta))
			for ti, id := range ds.TaskIDs {
				beta := math.Exp(logBeta[ti])
				for _, a := range ds.Answers[id] {
					wi := ds.workerIndex[a.Worker]
					x := alpha[wi] * beta
					s := sigmoid(x)
					// d/dx of expected log-likelihood contribution.
					gradX := 0.0
					for c := 0; c < ds.K; c++ {
						q := post[ti][c]
						if q == 0 {
							continue
						}
						if a.Option == c {
							gradX += q * (1 - s)
						} else {
							gradX -= q * s
						}
					}
					gAlpha[wi] += gradX * beta
					gBeta[ti] += gradX * alpha[wi] * beta
					nAlpha[wi]++
					nBeta[ti]++
				}
			}
			for wi := range alpha {
				g := -(alpha[wi] - 1) * 0.1 // weak Gaussian prior toward 1
				if nAlpha[wi] > 0 {
					g += gAlpha[wi] / nAlpha[wi]
				}
				alpha[wi] = clamp(alpha[wi]+lr*g, -6, 6)
			}
			for ti := range logBeta {
				g := -logBeta[ti] * 0.1 // weak Gaussian prior toward 0
				if nBeta[ti] > 0 {
					g += gBeta[ti] / nBeta[ti]
				}
				logBeta[ti] = clamp(logBeta[ti]+lr*g, -3, 3)
			}
		}

		// E-step.
		delta := 0.0
		for ti, id := range ds.TaskIDs {
			beta := math.Exp(logBeta[ti])
			logp := make([]float64, ds.K)
			for c := 0; c < ds.K; c++ {
				logp[c] = math.Log(prior[c] + 1e-300)
			}
			for _, a := range ds.Answers[id] {
				wi := ds.workerIndex[a.Worker]
				s := clamp(sigmoid(alpha[wi]*beta), 1e-9, 1-1e-9)
				for c := 0; c < ds.K; c++ {
					if a.Option == c {
						logp[c] += math.Log(s)
					} else {
						logp[c] += math.Log((1 - s) / km1)
					}
				}
			}
			np := softmax(logp)
			for c := 0; c < ds.K; c++ {
				delta += math.Abs(np[c] - post[ti][c])
			}
			post[ti] = np
		}
		if delta < tol*float64(len(ds.TaskIDs)) {
			iters++
			break
		}
	}

	// Worker quality: average modeled correctness over the tasks each
	// worker actually answered.
	res := packResult("GLAD", ds, post, func(w string) float64 { return 0 }, iters)
	qualitySum := make(map[string]float64, len(ds.WorkerIDs))
	qualityN := make(map[string]int, len(ds.WorkerIDs))
	for ti, id := range ds.TaskIDs {
		beta := math.Exp(logBeta[ti])
		for _, a := range ds.Answers[id] {
			wi := ds.workerIndex[a.Worker]
			qualitySum[a.Worker] += sigmoid(alpha[wi] * beta)
			qualityN[a.Worker]++
		}
	}
	for _, w := range ds.WorkerIDs {
		if qualityN[w] == 0 {
			res.WorkerQuality[w] = 0.5
			continue
		}
		res.WorkerQuality[w] = qualitySum[w] / float64(qualityN[w])
	}
	// Expose inferred difficulty for diagnostics via TaskEasiness.
	res.taskEasiness = make(map[int]float64, len(logBeta))
	for ti := range logBeta {
		res.taskEasiness[ti] = math.Exp(logBeta[ti])
	}
	return res, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
