package truth

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// NumericMethod selects how rating-task answers are aggregated.
type NumericMethod int

const (
	// NumericMean averages the scores.
	NumericMean NumericMethod = iota
	// NumericMedian takes the median score, robust to spam outliers.
	NumericMedian
	// NumericWeightedMean weighs scores by supplied worker weights.
	NumericWeightedMean
)

// String returns the method name.
func (m NumericMethod) String() string {
	switch m {
	case NumericMean:
		return "mean"
	case NumericMedian:
		return "median"
	case NumericWeightedMean:
		return "weighted-mean"
	default:
		return fmt.Sprintf("NumericMethod(%d)", int(m))
	}
}

// AggregateNumeric estimates the true score of each rating task in ids.
// weights is consulted only for NumericWeightedMean (missing workers get
// weight 0.5).
func AggregateNumeric(p *core.Pool, ids []core.TaskID, method NumericMethod, weights map[string]float64) (map[core.TaskID]float64, error) {
	out := make(map[core.TaskID]float64, len(ids))
	for _, id := range ids {
		t := p.Task(id)
		if t == nil {
			return nil, fmt.Errorf("truth: unknown task %d", id)
		}
		if t.Kind != core.Rating {
			return nil, fmt.Errorf("truth: task %d is %v, not rating", id, t.Kind)
		}
		answers := p.Answers(id)
		if len(answers) == 0 {
			continue
		}
		switch method {
		case NumericMean:
			xs := make([]float64, len(answers))
			for i, a := range answers {
				xs[i] = a.Score
			}
			out[id] = stats.Mean(xs)
		case NumericMedian:
			xs := make([]float64, len(answers))
			for i, a := range answers {
				xs[i] = a.Score
			}
			out[id] = stats.Median(xs)
		case NumericWeightedMean:
			num, den := 0.0, 0.0
			for _, a := range answers {
				w, ok := weights[a.Worker]
				if !ok {
					w = 0.5
				}
				num += w * a.Score
				den += w
			}
			if den == 0 {
				continue
			}
			out[id] = num / den
		default:
			return nil, fmt.Errorf("truth: unknown numeric method %d", int(method))
		}
	}
	return out, nil
}

// NumericError returns the mean absolute error of aggregated scores
// against the planted truth over the tasks present in est.
func NumericError(p *core.Pool, est map[core.TaskID]float64) float64 {
	if len(est) == 0 {
		return 0
	}
	total := 0.0
	n := 0
	for id, v := range est {
		t := p.Task(id)
		if t == nil {
			continue
		}
		d := v - t.GroundTruthScore
		if d < 0 {
			d = -d
		}
		total += d
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
