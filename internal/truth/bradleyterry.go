package truth

import (
	"fmt"
	"math"
	"sort"
)

// Comparison is one observed pairwise outcome: item I faced item J and
// IWon reports whether I was judged better.
type Comparison struct {
	I, J int
	IWon bool
}

// BTResult is the output of Bradley–Terry inference over noisy pairwise
// comparisons.
type BTResult struct {
	// Scores holds the estimated (normalized, geometric-mean-1) skill of
	// each item.
	Scores []float64
	// Ranking lists item indices best-first.
	Ranking []int
	// Iterations reports MM iterations run.
	Iterations int
}

// BradleyTerry fits the Bradley–Terry model to comparisons over n items
// using Hunter's MM algorithm:
//
//	P(i beats j) = s_i / (s_i + s_j)
//	s_i ← W_i / Σ_{j≠i} n_ij / (s_i + s_j)
//
// A small pseudo-count (a virtual half-win between every compared pair)
// regularizes items with all wins or all losses, which is essential with
// crowdsourced data where some items never lose in a small sample.
//
// Aggregating individual worker answers with Bradley–Terry squeezes more
// signal out of the same votes than per-pair majority (CrowdBT-style):
// every answer contributes globally, not just to its own pair.
func BradleyTerry(n int, comparisons []Comparison) (*BTResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("truth: Bradley-Terry over %d items", n)
	}
	wins := make([]float64, n)        // W_i
	games := make(map[[2]int]float64) // n_ij for i < j
	for _, c := range comparisons {
		if c.I < 0 || c.I >= n || c.J < 0 || c.J >= n || c.I == c.J {
			return nil, fmt.Errorf("truth: comparison (%d,%d) out of range [0,%d)", c.I, c.J, n)
		}
		a, b := c.I, c.J
		if a > b {
			a, b = b, a
		}
		games[[2]int{a, b}]++
		if c.IWon {
			wins[c.I]++
		} else {
			wins[c.J]++
		}
	}
	// Regularize: every compared pair gets one virtual game split evenly.
	const pseudo = 0.5
	for key := range games {
		games[key] += 2 * pseudo
		wins[key[0]] += pseudo
		wins[key[1]] += pseudo
	}

	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	const maxIter = 200
	const tol = 1e-9
	iters := 0
	for ; iters < maxIter; iters++ {
		denom := make([]float64, n)
		for key, nij := range games {
			i, j := key[0], key[1]
			d := nij / (s[i] + s[j])
			denom[i] += d
			denom[j] += d
		}
		delta := 0.0
		for i := 0; i < n; i++ {
			if denom[i] == 0 {
				continue // never compared: stays at 1
			}
			ns := wins[i] / denom[i]
			delta += math.Abs(ns - s[i])
			s[i] = ns
		}
		// Normalize to geometric mean 1 (the model is scale invariant).
		logSum := 0.0
		for i := range s {
			if s[i] <= 0 {
				s[i] = 1e-12
			}
			logSum += math.Log(s[i])
		}
		scale := math.Exp(logSum / float64(n))
		for i := range s {
			s[i] /= scale
		}
		if delta < tol*float64(n) {
			iters++
			break
		}
	}
	ranking := make([]int, n)
	for i := range ranking {
		ranking[i] = i
	}
	sort.SliceStable(ranking, func(a, b int) bool { return s[ranking[a]] > s[ranking[b]] })
	return &BTResult{Scores: s, Ranking: ranking, Iterations: iters}, nil
}
