package truth

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// NumericEM is an iterative truth-inference method for numeric (rating)
// tasks in the spirit of PM / CATD: it alternates between estimating each
// task's true value as a weight-averaged answer and re-estimating each
// worker's weight from their residuals, so that workers who consistently
// land near the consensus dominate the next round's averages.
//
//	truth_t   = Σ_w weight_w · answer_{w,t} / Σ_w weight_w
//	weight_w  ∝ 1 / (mean squared residual of w + ε)
type NumericEM struct {
	MaxIter int
	Tol     float64
}

// NumericResult is the output of numeric truth inference.
type NumericResult struct {
	// Values holds the inferred true score per task.
	Values map[core.TaskID]float64
	// WorkerWeight maps each worker to their final (normalized to mean 1)
	// weight.
	WorkerWeight map[string]float64
	// Iterations reports how many refinement rounds ran.
	Iterations int
}

// Infer estimates true scores for the rating tasks in ids.
func (m NumericEM) Infer(p *core.Pool, ids []core.TaskID) (*NumericResult, error) {
	maxIter, tol := m.MaxIter, m.Tol
	if maxIter <= 0 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = 1e-6
	}
	type obs struct {
		task   int
		worker int
		score  float64
	}
	var observations []obs
	taskIdx := make(map[core.TaskID]int, len(ids))
	workerIdx := make(map[string]int)
	var workerNames []string
	for _, id := range ids {
		t := p.Task(id)
		if t == nil {
			return nil, fmt.Errorf("truth: unknown task %d", id)
		}
		if t.Kind != core.Rating {
			return nil, fmt.Errorf("truth: task %d is %v, not rating", id, t.Kind)
		}
		if _, ok := taskIdx[id]; !ok {
			taskIdx[id] = len(taskIdx)
		}
		for _, a := range p.Answers(id) {
			wi, ok := workerIdx[a.Worker]
			if !ok {
				wi = len(workerNames)
				workerIdx[a.Worker] = wi
				workerNames = append(workerNames, a.Worker)
			}
			observations = append(observations, obs{taskIdx[id], wi, a.Score})
		}
	}
	if len(observations) == 0 {
		return nil, fmt.Errorf("truth: no rating answers for the given tasks")
	}

	nTasks := len(taskIdx)
	nWorkers := len(workerNames)
	weights := make([]float64, nWorkers)
	for i := range weights {
		weights[i] = 1
	}
	values := make([]float64, nTasks)

	const eps = 1e-6
	iters := 0
	for ; iters < maxIter; iters++ {
		// Truth step: weighted means.
		num := make([]float64, nTasks)
		den := make([]float64, nTasks)
		for _, o := range observations {
			num[o.task] += weights[o.worker] * o.score
			den[o.task] += weights[o.worker]
		}
		delta := 0.0
		for ti := range values {
			if den[ti] == 0 {
				continue
			}
			nv := num[ti] / den[ti]
			delta += math.Abs(nv - values[ti])
			values[ti] = nv
		}
		// Weight step: inverse mean squared residual.
		sq := make([]float64, nWorkers)
		cnt := make([]float64, nWorkers)
		for _, o := range observations {
			r := o.score - values[o.task]
			sq[o.worker] += r * r
			cnt[o.worker]++
		}
		for wi := range weights {
			if cnt[wi] == 0 {
				weights[wi] = 1
				continue
			}
			weights[wi] = 1 / (sq[wi]/cnt[wi] + eps)
		}
		// Normalize weights to mean 1 for interpretability and numeric
		// stability (the model is scale-invariant in weights).
		total := 0.0
		for _, w := range weights {
			total += w
		}
		mean := total / float64(nWorkers)
		if mean > 0 {
			for wi := range weights {
				weights[wi] /= mean
			}
		}
		if delta < tol*float64(nTasks) && iters > 0 {
			iters++
			break
		}
	}

	res := &NumericResult{
		Values:       make(map[core.TaskID]float64, nTasks),
		WorkerWeight: make(map[string]float64, nWorkers),
		Iterations:   iters,
	}
	for id, ti := range taskIdx {
		res.Values[id] = values[ti]
	}
	for wi, name := range workerNames {
		res.WorkerWeight[name] = weights[wi]
	}
	return res, nil
}

// NumericResultError returns the mean absolute error of inferred values
// against the planted truth.
func NumericResultError(p *core.Pool, r *NumericResult) float64 {
	if len(r.Values) == 0 {
		return 0
	}
	total := 0.0
	n := 0
	for id, v := range r.Values {
		t := p.Task(id)
		if t == nil {
			continue
		}
		total += math.Abs(v - t.GroundTruthScore)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
