package truth

import "sync"

// ResultKey identifies one cached inference result: the method name and
// the option-count group it was computed over. It is a small comparable
// struct rather than a formatted string so that the serving hot path can
// build a key per poll without allocating.
type ResultKey struct {
	Method string
	K      int
}

// CacheEntry is what the cache stores per key: the result, the pool
// version it was computed at, and — to make incremental recomputation
// possible — the Dataset it was computed over plus the per-shard version
// vector of the snapshot. A later refresh at a newer version can extend
// DS with only the answers appended since Shards (Dataset.AppendDelta)
// and seed EM from Res.Warm instead of rebuilding and re-estimating from
// scratch. DS and Shards may be left zero by callers that only want
// memoization.
type CacheEntry struct {
	// Version is the aggregate pool version the entry was computed at.
	Version uint64
	// Shards holds the per-shard versions of the snapshot (nil when the
	// producer does not track them; such entries never serve as delta
	// bases).
	Shards []uint64
	// Res is the inference result; never nil in a stored entry.
	Res *Result
	// DS is the dataset Res was computed over (nil when not retained).
	DS *Dataset
}

// ResultCache memoizes inference Results keyed by (method, option count)
// and a pool version number. EM-style inference is the expensive step of
// a results endpoint — O(iterations × answers) per call — while the
// answer set often does not change between polls. A caller that tracks a
// mutation counter (core.ShardedPool.Version) can reuse the previous
// Result whenever the version is unchanged, and when the version has
// moved it can still fetch the latest entry as the base for an
// incremental (delta + warm-start) recompute.
//
// ResultCache is safe for concurrent use. Cached Results and Datasets
// are shared, so callers must treat them as immutable.
type ResultCache struct {
	mu      sync.Mutex
	entries map[ResultKey]CacheEntry
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{entries: make(map[ResultKey]CacheEntry)}
}

// Get returns the cached Result for key if it was stored at exactly the
// given version. A nil cache never hits (memoization disabled).
func (c *ResultCache) Get(key ResultKey, version uint64) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.Version != version {
		return nil, false
	}
	return e.Res, true
}

// Latest returns the most recent entry for key regardless of version,
// for use as the base of an incremental recompute (the caller compares
// entry.Version/Shards against the current pool state). A nil cache
// never hits.
func (c *ResultCache) Latest(key ResultKey) (CacheEntry, bool) {
	if c == nil {
		return CacheEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e, ok
}

// Put stores the entry for key, replacing any entry at an older or equal
// version. An entry older than what is already cached is dropped: with
// single-flight recomputes racing a background refresher, a slow
// computation from version v must not clobber a completed one from v' >
// v, or pollers would see results go backwards. A nil cache drops the
// entry.
func (c *ResultCache) Put(key ResultKey, e CacheEntry) {
	if c == nil || e.Res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[key]; ok && cur.Version > e.Version {
		return
	}
	c.entries[key] = e
}

// Len returns the number of cached entries (one per key); 0 for a nil
// cache.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
