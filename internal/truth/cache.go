package truth

import "sync"

// ResultCache memoizes inference Results keyed by an arbitrary string key
// (typically "method/k") and a pool version number. EM-style inference is
// the expensive step of a results endpoint — O(iterations × answers) per
// call — while the answer set often does not change between polls. A
// caller that tracks a mutation counter (core.ConcurrentPool.Version)
// can reuse the previous Result whenever the version is unchanged, and
// recompute only after new answers arrive.
//
// ResultCache is safe for concurrent use. Cached Results are shared, so
// callers must treat them as immutable.
type ResultCache struct {
	mu      sync.Mutex
	entries map[string]cachedResult
}

type cachedResult struct {
	version uint64
	res     *Result
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{entries: make(map[string]cachedResult)}
}

// Get returns the cached Result for key if it was stored at exactly the
// given version. A nil cache never hits (memoization disabled).
func (c *ResultCache) Get(key string, version uint64) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.version != version {
		return nil, false
	}
	return e.res, true
}

// Put stores the Result for key at the given version, replacing any older
// entry for the same key. A nil cache drops the entry.
func (c *ResultCache) Put(key string, version uint64, r *Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = cachedResult{version: version, res: r}
}

// Len returns the number of cached entries (one per key); 0 for a nil
// cache.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
