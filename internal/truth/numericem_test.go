package truth

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/stats"
)

func ratingWorkload(seed uint64, nTasks, k int, mix crowd.Mix) (*core.Pool, []core.TaskID, []*crowd.Worker) {
	rng := stats.NewRNG(seed)
	pool := core.NewPool()
	var ids []core.TaskID
	for i := 0; i < nTasks; i++ {
		id := pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.Rating,
			GroundTruthScore: rng.Range(1, 5),
		})
		ids = append(ids, id)
	}
	ws := crowd.NewPopulation(rng, 20, mix)
	pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.Unlimited())
	assigner := core.AssignerFunc(func(p *core.Pool, w string) (core.TaskID, bool) {
		el := p.EligibleFor(w)
		if len(el) == 0 {
			return 0, false
		}
		return el[0], true
	})
	if _, err := pl.CollectRedundant(assigner, k); err != nil {
		panic(err)
	}
	return pool, ids, ws
}

func TestNumericEMBeatsPlainMeanUnderSpam(t *testing.T) {
	var emErr, meanErr float64
	for seed := uint64(300); seed < 305; seed++ {
		pool, ids, _ := ratingWorkload(seed, 80, 7, crowd.RegimeSpammy)
		res, err := NumericEM{}.Infer(pool, ids)
		if err != nil {
			t.Fatal(err)
		}
		emErr += NumericResultError(pool, res)
		mean, err := AggregateNumeric(pool, ids, NumericMean, nil)
		if err != nil {
			t.Fatal(err)
		}
		meanErr += NumericError(pool, mean)
	}
	if emErr >= meanErr {
		t.Fatalf("NumericEM error %.4f should beat plain mean %.4f under spam",
			emErr/5, meanErr/5)
	}
}

func TestNumericEMWeightsSeparateWorkers(t *testing.T) {
	pool, ids, ws := ratingWorkload(301, 100, 7, crowd.RegimeSpammy)
	res, err := NumericEM{}.Infer(pool, ids)
	if err != nil {
		t.Fatal(err)
	}
	var honestSum, honestN, spamSum, spamN float64
	for _, w := range ws {
		wt, ok := res.WorkerWeight[w.Name]
		if !ok {
			continue
		}
		switch w.Behave {
		case crowd.Honest:
			honestSum += wt
			honestN++
		case crowd.Spammer, crowd.Adversary:
			spamSum += wt
			spamN++
		}
	}
	if honestN == 0 || spamN == 0 {
		t.Skip("population lacks one class")
	}
	if honestSum/honestN <= spamSum/spamN {
		t.Fatalf("honest mean weight %.3f should exceed spam %.3f",
			honestSum/honestN, spamSum/spamN)
	}
}

func TestNumericEMValidation(t *testing.T) {
	pool := core.NewPool()
	choice := pool.MustAdd(&core.Task{ID: 1, Kind: core.SingleChoice, Options: []string{"a", "b"}, GroundTruth: 0})
	if _, err := (NumericEM{}).Infer(pool, []core.TaskID{choice}); err == nil {
		t.Fatal("non-rating task should fail")
	}
	if _, err := (NumericEM{}).Infer(pool, []core.TaskID{999}); err == nil {
		t.Fatal("unknown task should fail")
	}
	rating := pool.MustAdd(&core.Task{ID: 2, Kind: core.Rating, GroundTruthScore: 3})
	if _, err := (NumericEM{}).Infer(pool, []core.TaskID{rating}); err == nil {
		t.Fatal("no answers should fail")
	}
}

func TestNumericEMExactOnPerfectAnswers(t *testing.T) {
	pool := core.NewPool()
	var ids []core.TaskID
	for i := 0; i < 10; i++ {
		id := pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.Rating,
			GroundTruthScore: float64(i),
		})
		ids = append(ids, id)
		for _, w := range []string{"a", "b", "c"} {
			pool.Record(core.Answer{Task: id, Worker: w, Option: -1, Score: float64(i)})
		}
	}
	res, err := NumericEM{}.Infer(pool, ids)
	if err != nil {
		t.Fatal(err)
	}
	if e := NumericResultError(pool, res); e > 1e-9 {
		t.Fatalf("perfect answers give error %v", e)
	}
	if res.Iterations < 1 {
		t.Fatal("iterations not reported")
	}
}
