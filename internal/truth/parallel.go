package truth

import (
	"runtime"
	"sync"
)

// Parallelism model of the EM kernels
//
// Every loop the kernels run falls into one of three shapes, all of which
// stay bit-identical to a single-goroutine run at any worker count:
//
//   - task-major sweeps (E-steps, per-task gradients): each task's output
//     depends only on the previous iteration's global state, so tasks are
//     split into contiguous ranges with disjoint writes.
//   - worker-major sweeps (reliability, confusion matrices, ability
//     gradients): each crowd worker's statistic is accumulated entirely
//     inside one shard, over that worker's answers in task order — no
//     floating-point accumulator ever crosses a shard boundary, so there
//     is no merge step whose association order could change the result.
//   - global reductions (class prior, convergence delta): per-task values
//     are written to a scratch slot and reduced serially in task order.
//
// Because shard boundaries never influence any floating-point association
// order, the boundaries are free to depend on GOMAXPROCS.

// inferParallelism overrides the number of goroutines the EM kernels use;
// 0 means runtime.GOMAXPROCS(0). Tests pin it to sweep a worker-count
// matrix without touching the global GOMAXPROCS.
var inferParallelism = 0

// serialAnswerThreshold is the dataset size (total answers) below which
// the kernels stay on the calling goroutine: under a few thousand answers
// the fork/join handoff costs more than the sweep itself.
var serialAnswerThreshold = 4096

// kernelWorkers picks the goroutine count for a dataset with nAnswers
// usable answers.
func kernelWorkers(nAnswers int) int {
	if nAnswers < serialAnswerThreshold {
		return 1
	}
	w := inferParallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor splits [0, n) into one contiguous range per worker slot and
// runs fn(slot, lo, hi) on each concurrently; with workers <= 1 it runs
// inline on the calling goroutine. Slots are in [0, workers) and can
// index preallocated per-slot scratch. Writes by different slots must be
// disjoint.
func parallelFor(workers, n int, fn func(slot, lo, hi int)) {
	if workers <= 1 || n <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo, hi := s*n/workers, (s+1)*n/workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			fn(slot, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}
