package cost_test

// External test package so the record generator is shared with
// cmd/benchrunner through internal/benchdata.

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/cost"
)

// BenchmarkPruneAllPairs scores every unordered pair of 1500 records
// (~1.12M pairs), the acceptance-scale similarity-join workload.
func BenchmarkPruneAllPairs(b *testing.B) {
	recs := benchdata.Records(7, 1500)
	p := &cost.Pruner{Low: 0.3, High: 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SelfPairs(recs); err != nil {
			b.Fatal(err)
		}
	}
}
