package cost

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/benchdata"
)

// forcePruneWorkers pins pair scoring to exactly w goroutines (w == 1
// with a huge threshold is the pure serial path) and returns a restore
// func.
func forcePruneWorkers(w int) func() {
	oldPar, oldThr := pruneParallelism, serialPairThreshold
	pruneParallelism = w
	if w == 1 {
		serialPairThreshold = math.MaxInt
	} else {
		serialPairThreshold = 0
	}
	return func() {
		pruneParallelism, serialPairThreshold = oldPar, oldThr
	}
}

// TestParallelPruneMatchesSerial: sharded pair scoring must reproduce the
// serial scan exactly — same candidate order, same scores, same
// auto-match and pruned partitions — at 1, 2, 4, and 8 goroutines, on
// both the default fast path (with its prefilter) and a custom Sim.
func TestParallelPruneMatchesSerial(t *testing.T) {
	recs := benchdata.Records(99, 400)
	pruners := map[string]*Pruner{
		"default":   {Low: 0.3, High: 0.85},
		"customSim": {Low: 0.4, High: 2, Sim: CombinedSimilarity},
	}
	for name, p := range pruners {
		restore := forcePruneWorkers(1)
		ref, err := p.SelfPairs(recs)
		restore()
		if err != nil {
			t.Fatal(err)
		}
		refCross, err := func() (*PruneResult, error) {
			defer forcePruneWorkers(1)()
			return p.CrossPairs(recs[:150], recs[150:])
		}()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 8} {
			restore := forcePruneWorkers(w)
			got, err := p.SelfPairs(recs)
			if err != nil {
				restore()
				t.Fatal(err)
			}
			gotCross, err := p.CrossPairs(recs[:150], recs[150:])
			restore()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("%s workers=%d: SelfPairs diverged from serial scan "+
					"(cands %d/%d, auto %d/%d, pruned %d/%d)",
					name, w, len(got.Candidates), len(ref.Candidates),
					len(got.AutoMatch), len(ref.AutoMatch),
					got.PrunedCount, ref.PrunedCount)
			}
			if !reflect.DeepEqual(refCross, gotCross) {
				t.Fatalf("%s workers=%d: CrossPairs diverged from serial scan", name, w)
			}
		}
	}
}

// TestPrefilterOnlySkipsPrunedPairs verifies the size-ratio prefilter is
// conservative: disabling it (Low = 0 scores everything) must yield the
// same candidate and auto-match sets as any Low, and the bound must
// dominate the true similarity on random features.
func TestPrefilterOnlySkipsPrunedPairs(t *testing.T) {
	recs := benchdata.Records(123, 200)
	feats := make([]recordFeatures, len(recs))
	for i, r := range recs {
		feats[i] = featurize(r)
	}
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j += 17 {
			bound := simUpperBound(feats[i], feats[j])
			sim := fastCombined(feats[i], feats[j])
			if sim > bound+1e-12 {
				t.Fatalf("bound %v below actual similarity %v for pair (%d,%d)",
					bound, sim, i, j)
			}
		}
	}

	withPrefilter := &Pruner{Low: 0.45, High: 0.8}
	scoreAll := &Pruner{Low: 0, High: 0.8}
	a, err := withPrefilter.SelfPairs(recs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scoreAll.SelfPairs(recs)
	if err != nil {
		t.Fatal(err)
	}
	var kept []ScoredPair
	for _, sp := range b.Candidates {
		if sp.Sim >= withPrefilter.Low {
			kept = append(kept, sp)
		}
	}
	if !reflect.DeepEqual(a.Candidates, kept) {
		t.Fatalf("prefilter dropped scorable candidates: %d vs %d",
			len(a.Candidates), len(kept))
	}
	if !reflect.DeepEqual(a.AutoMatch, b.AutoMatch) {
		t.Fatal("prefilter changed auto-match set")
	}
	if a.TotalPairs != b.TotalPairs {
		t.Fatalf("TotalPairs mismatch: %d vs %d", a.TotalPairs, b.TotalPairs)
	}
}
