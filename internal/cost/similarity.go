// Package cost implements the cost-control toolbox of crowdsourced data
// management: machine-based candidate pruning via similarity measures,
// answer deduction through transitivity, sampling-based estimation for
// crowd-powered aggregation, and task batching.
//
// The guiding principle from the survey: let the machine do everything it
// can cheaply, and spend crowd answers only where machine confidence is
// low. For entity resolution this means computing textual similarity over
// all pairs, pruning pairs that are obviously non-matches, asking the
// crowd about the rest, and deducing further answers from transitivity.
package cost

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases s and splits it into alphanumeric tokens.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Jaccard returns the token-set Jaccard similarity of a and b in [0,1].
// Two empty strings are defined as similarity 1.
func Jaccard(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := make(map[string]bool, len(ta))
	for _, t := range ta {
		set[t] = true
	}
	inter := 0
	seen := make(map[string]bool, len(tb))
	for _, t := range tb {
		if seen[t] {
			continue
		}
		seen[t] = true
		if set[t] {
			inter++
		}
	}
	union := len(set) + len(seen) - inter
	return float64(inter) / float64(union)
}

// EditDistance returns the Levenshtein distance between a and b.
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// EditSimilarity normalizes edit distance into a similarity in [0,1]:
// 1 - dist/maxLen. Two empty strings have similarity 1.
func EditSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	max := la
	if lb > max {
		max = lb
	}
	if max == 0 {
		return 1
	}
	return 1 - float64(EditDistance(a, b))/float64(max)
}

// NGramSimilarity returns the Jaccard similarity of the character n-gram
// sets of a and b (lower-cased). n must be >= 1; strings shorter than n
// contribute themselves as a single gram.
func NGramSimilarity(a, b string, n int) float64 {
	if n < 1 {
		n = 2
	}
	ga, gb := ngrams(strings.ToLower(a), n), ngrams(strings.ToLower(b), n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range gb {
		if ga[g] {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	return float64(inter) / float64(union)
}

func ngrams(s string, n int) map[string]bool {
	r := []rune(s)
	out := make(map[string]bool)
	if len(r) == 0 {
		return out
	}
	if len(r) < n {
		out[string(r)] = true
		return out
	}
	for i := 0; i+n <= len(r); i++ {
		out[string(r[i:i+n])] = true
	}
	return out
}

// Similarity is a pluggable string-pair similarity in [0,1].
type Similarity func(a, b string) float64

// CombinedSimilarity averages Jaccard and 2-gram similarity — a cheap,
// robust default for entity-resolution pruning.
func CombinedSimilarity(a, b string) float64 {
	return 0.5*Jaccard(a, b) + 0.5*NGramSimilarity(a, b, 2)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
