package cost

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
)

// Pair identifies a candidate record pair by indices into two collections
// (or the same collection for self-joins, with I < J enforced by callers).
type Pair struct {
	I, J int
}

// ScoredPair is a candidate pair with its machine similarity.
type ScoredPair struct {
	Pair
	Sim float64
}

// PruneResult partitions all pairs of a (cross or self) join into the
// crowd candidates, the machine-accepted matches, and the pruned
// non-matches, according to two thresholds.
type PruneResult struct {
	// Candidates are pairs with Low <= sim < High: uncertain, sent to the
	// crowd, ordered by descending similarity (most promising first).
	Candidates []ScoredPair
	// AutoMatch are pairs with sim >= High: accepted without the crowd.
	AutoMatch []ScoredPair
	// PrunedCount is how many pairs fell below Low and were discarded.
	PrunedCount int
	// TotalPairs is the number of pairs examined.
	TotalPairs int
}

// Pruner configures similarity-based candidate generation for a
// crowdsourced join (CrowdER-style machine pass).
//
// Pair scoring is sharded across GOMAXPROCS goroutines over contiguous
// pair ranges; shard outputs are concatenated in shard order, so results
// are identical to a serial scan at any parallelism. Small inputs stay on
// the calling goroutine.
type Pruner struct {
	// Sim scores a pair of record strings; defaults to CombinedSimilarity.
	// A custom Sim must be safe for concurrent use: it is called from
	// multiple goroutines on large inputs.
	Sim Similarity
	// Low is the pruning threshold: pairs below it never reach the crowd.
	Low float64
	// High is the auto-accept threshold: pairs at or above it are matched
	// without the crowd. Set High > 1 to disable auto-accept.
	High float64
}

// Parallelism knobs; package-level so tests can pin the worker count and
// force either path.
var (
	// pruneParallelism overrides the scoring goroutine count; 0 means
	// runtime.GOMAXPROCS(0).
	pruneParallelism = 0
	// serialPairThreshold is the pair count below which scoring stays
	// serial: fork/join overhead beats the scan itself on small joins.
	serialPairThreshold = 1 << 14
)

func pruneWorkers(totalPairs int) int {
	if totalPairs < serialPairThreshold {
		return 1
	}
	w := pruneParallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// recordFeatures caches one record's token and 2-gram sets as sorted,
// deduplicated 64-bit hashes. Sorted-slice merge intersection is several
// times faster than Go map iteration in the O(n²) pair loop, and the set
// sizes feed the cheap Jaccard upper bound used for prefiltering.
type recordFeatures struct {
	tokens []uint64
	grams  []uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// sortedSet sorts hs and removes duplicates in place.
func sortedSet(hs []uint64) []uint64 {
	slices.Sort(hs)
	return slices.Compact(hs)
}

func featurize(s string) recordFeatures {
	toks := Tokenize(s)
	th := make([]uint64, len(toks))
	for i, t := range toks {
		th[i] = hashString(t)
	}
	r := []rune(strings.ToLower(s))
	var gh []uint64
	switch {
	case len(r) == 0:
	case len(r) < 2:
		gh = []uint64{hashRunes(r)}
	default:
		gh = make([]uint64, len(r)-1)
		for i := 0; i+2 <= len(r); i++ {
			gh[i] = hashRunes(r[i : i+2])
		}
	}
	return recordFeatures{tokens: sortedSet(th), grams: sortedSet(gh)}
}

func hashRunes(rs []rune) uint64 {
	h := uint64(fnvOffset)
	for _, c := range rs {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// sortedJaccard computes |a∩b| / |a∪b| over sorted hash sets with
// both-empty defined as 1.
func sortedJaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// fastCombined mirrors CombinedSimilarity over precomputed features.
func fastCombined(a, b recordFeatures) float64 {
	return 0.5*sortedJaccard(a.tokens, b.tokens) + 0.5*sortedJaccard(a.grams, b.grams)
}

// sizeRatio bounds the Jaccard of two sets from their cardinalities
// alone: |A∩B|/|A∪B| <= min/max.
func sizeRatio(la, lb int) float64 {
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	if la > lb {
		la, lb = lb, la
	}
	return float64(la) / float64(lb)
}

// simUpperBound is a prefilter: the largest similarity fastCombined could
// possibly return for these features. Pairs bounded below Low are counted
// as pruned without scoring.
func simUpperBound(a, b recordFeatures) float64 {
	return 0.5*sizeRatio(len(a.tokens), len(b.tokens)) +
		0.5*sizeRatio(len(a.grams), len(b.grams))
}

func featurizeAll(records []string, workers int) []recordFeatures {
	feats := make([]recordFeatures, len(records))
	parallelChunks(workers, len(records), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			feats[i] = featurize(records[i])
		}
	})
	return feats
}

// pairShard accumulates one shard's partition of the pair space.
type pairShard struct {
	cands  []ScoredPair
	autos  []ScoredPair
	pruned int
}

func (p *Pruner) route(sh *pairShard, sp ScoredPair) {
	switch {
	case sp.Sim >= p.High:
		sh.autos = append(sh.autos, sp)
	case sp.Sim >= p.Low:
		sh.cands = append(sh.cands, sp)
	default:
		sh.pruned++
	}
}

// mergeShards concatenates shard partitions in shard order. Within a
// shard pairs are visited in global enumeration order, so the merged
// slices match what a serial scan would produce.
func mergeShards(res *PruneResult, shards []pairShard) {
	nc, na := 0, 0
	for _, sh := range shards {
		nc += len(sh.cands)
		na += len(sh.autos)
	}
	res.Candidates = make([]ScoredPair, 0, nc)
	res.AutoMatch = make([]ScoredPair, 0, na)
	for _, sh := range shards {
		res.Candidates = append(res.Candidates, sh.cands...)
		res.AutoMatch = append(res.AutoMatch, sh.autos...)
		res.PrunedCount += sh.pruned
	}
}

// parallelChunks splits [0, n) into one contiguous range per worker and
// runs fn on each concurrently (inline when workers <= 1).
func parallelChunks(workers, n int, fn func(lo, hi int)) {
	if workers <= 1 || n <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo, hi := s*n/workers, (s+1)*n/workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// runSharded partitions row space [0, rows) into pair-count-balanced
// contiguous ranges (weight(i) = pairs contributed by row i), scores each
// range on its own goroutine into a private shard, and merges in order.
func runSharded(workers, rows int, weight func(i int) int, res *PruneResult,
	score func(sh *pairShard, lo, hi int)) {
	if workers <= 1 || rows <= 1 {
		var sh pairShard
		if rows > 0 {
			score(&sh, 0, rows)
		}
		mergeShards(res, []pairShard{sh})
		return
	}
	total := 0
	for i := 0; i < rows; i++ {
		total += weight(i)
	}
	target := (total + workers - 1) / workers
	var ranges [][2]int
	lo, acc := 0, 0
	for i := 0; i < rows; i++ {
		acc += weight(i)
		if acc >= target && len(ranges) < workers-1 {
			ranges = append(ranges, [2]int{lo, i + 1})
			lo, acc = i+1, 0
		}
	}
	if lo < rows {
		ranges = append(ranges, [2]int{lo, rows})
	}
	shards := make([]pairShard, len(ranges))
	var wg sync.WaitGroup
	for s := range ranges {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			score(&shards[s], ranges[s][0], ranges[s][1])
		}(s)
	}
	wg.Wait()
	mergeShards(res, shards)
}

// CrossPairs scores every pair (a_i, b_j) between two record lists and
// partitions them by the thresholds.
func (p *Pruner) CrossPairs(a, b []string) (*PruneResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &PruneResult{TotalPairs: len(a) * len(b)}
	workers := pruneWorkers(res.TotalPairs)
	rowWeight := func(int) int { return len(b) }
	if p.Sim == nil {
		// Default similarity: amortize feature extraction to O(n).
		fa := featurizeAll(a, workers)
		fb := featurizeAll(b, workers)
		runSharded(workers, len(a), rowWeight, res, func(sh *pairShard, lo, hi int) {
			for i := lo; i < hi; i++ {
				fi := fa[i]
				for j := range b {
					if simUpperBound(fi, fb[j]) < p.Low {
						sh.pruned++
						continue
					}
					p.route(sh, ScoredPair{Pair{i, j}, fastCombined(fi, fb[j])})
				}
			}
		})
	} else {
		runSharded(workers, len(a), rowWeight, res, func(sh *pairShard, lo, hi int) {
			for i := lo; i < hi; i++ {
				for j := range b {
					p.route(sh, ScoredPair{Pair{i, j}, p.Sim(a[i], b[j])})
				}
			}
		})
	}
	p.sortCandidates(res)
	return res, nil
}

// SelfPairs scores every unordered pair within one record list.
func (p *Pruner) SelfPairs(records []string) (*PruneResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(records)
	res := &PruneResult{TotalPairs: n * (n - 1) / 2}
	workers := pruneWorkers(res.TotalPairs)
	rowWeight := func(i int) int { return n - 1 - i }
	if p.Sim == nil {
		feats := featurizeAll(records, workers)
		runSharded(workers, n, rowWeight, res, func(sh *pairShard, lo, hi int) {
			for i := lo; i < hi; i++ {
				fi := feats[i]
				for j := i + 1; j < n; j++ {
					if simUpperBound(fi, feats[j]) < p.Low {
						sh.pruned++
						continue
					}
					p.route(sh, ScoredPair{Pair{i, j}, fastCombined(fi, feats[j])})
				}
			}
		})
	} else {
		runSharded(workers, n, rowWeight, res, func(sh *pairShard, lo, hi int) {
			for i := lo; i < hi; i++ {
				for j := i + 1; j < n; j++ {
					p.route(sh, ScoredPair{Pair{i, j}, p.Sim(records[i], records[j])})
				}
			}
		})
	}
	p.sortCandidates(res)
	return res, nil
}

func (p *Pruner) validate() error {
	if p.Low < 0 || p.Low > 1 {
		return fmt.Errorf("cost: pruning threshold %v outside [0,1]", p.Low)
	}
	if p.High < p.Low {
		return fmt.Errorf("cost: auto-accept threshold %v below pruning threshold %v",
			p.High, p.Low)
	}
	return nil
}

func (p *Pruner) sortCandidates(res *PruneResult) {
	sort.SliceStable(res.Candidates, func(a, b int) bool {
		if res.Candidates[a].Sim != res.Candidates[b].Sim {
			return res.Candidates[a].Sim > res.Candidates[b].Sim
		}
		if res.Candidates[a].I != res.Candidates[b].I {
			return res.Candidates[a].I < res.Candidates[b].I
		}
		return res.Candidates[a].J < res.Candidates[b].J
	})
}

// PRF holds precision/recall/F1 of a predicted match set against truth.
type PRF struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

// EvaluatePairs compares predicted match pairs against the true match
// set. Pairs are normalized so order within a pair does not matter for
// self-joins when selfJoin is true.
func EvaluatePairs(predicted, actual []Pair, selfJoin bool) PRF {
	norm := func(p Pair) Pair {
		if selfJoin && p.J < p.I {
			return Pair{p.J, p.I}
		}
		return p
	}
	truth := make(map[Pair]bool, len(actual))
	for _, p := range actual {
		truth[norm(p)] = true
	}
	pred := make(map[Pair]bool, len(predicted))
	for _, p := range predicted {
		pred[norm(p)] = true
	}
	var r PRF
	for p := range pred {
		if truth[p] {
			r.TP++
		} else {
			r.FP++
		}
	}
	for p := range truth {
		if !pred[p] {
			r.FN++
		}
	}
	if r.TP+r.FP > 0 {
		r.Precision = float64(r.TP) / float64(r.TP+r.FP)
	}
	if r.TP+r.FN > 0 {
		r.Recall = float64(r.TP) / float64(r.TP+r.FN)
	}
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	return r
}
