package cost

import (
	"fmt"
	"sort"
	"strings"
)

// Pair identifies a candidate record pair by indices into two collections
// (or the same collection for self-joins, with I < J enforced by callers).
type Pair struct {
	I, J int
}

// ScoredPair is a candidate pair with its machine similarity.
type ScoredPair struct {
	Pair
	Sim float64
}

// PruneResult partitions all pairs of a (cross or self) join into the
// crowd candidates, the machine-accepted matches, and the pruned
// non-matches, according to two thresholds.
type PruneResult struct {
	// Candidates are pairs with Low <= sim < High: uncertain, sent to the
	// crowd, ordered by descending similarity (most promising first).
	Candidates []ScoredPair
	// AutoMatch are pairs with sim >= High: accepted without the crowd.
	AutoMatch []ScoredPair
	// PrunedCount is how many pairs fell below Low and were discarded.
	PrunedCount int
	// TotalPairs is the number of pairs examined.
	TotalPairs int
}

// Pruner configures similarity-based candidate generation for a
// crowdsourced join (CrowdER-style machine pass).
type Pruner struct {
	// Sim scores a pair of record strings; defaults to CombinedSimilarity.
	Sim Similarity
	// Low is the pruning threshold: pairs below it never reach the crowd.
	Low float64
	// High is the auto-accept threshold: pairs at or above it are matched
	// without the crowd. Set High > 1 to disable auto-accept.
	High float64
}

// recordFeatures caches the token and 2-gram sets of one record so the
// O(n²) pair loop does not re-tokenize strings per pair.
type recordFeatures struct {
	tokens map[string]bool
	grams  map[string]bool
}

func featurize(s string) recordFeatures {
	f := recordFeatures{tokens: make(map[string]bool), grams: ngrams(strings.ToLower(s), 2)}
	for _, t := range Tokenize(s) {
		f.tokens[t] = true
	}
	return f
}

// setJaccard computes |a∩b| / |a∪b| with both-empty defined as 1.
func setJaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if large[k] {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// fastCombined mirrors CombinedSimilarity over precomputed features.
func fastCombined(a, b recordFeatures) float64 {
	return 0.5*setJaccard(a.tokens, b.tokens) + 0.5*setJaccard(a.grams, b.grams)
}

// CrossPairs scores every pair (a_i, b_j) between two record lists and
// partitions them by the thresholds.
func (p *Pruner) CrossPairs(a, b []string) (*PruneResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &PruneResult{TotalPairs: len(a) * len(b)}
	if p.Sim == nil {
		// Default similarity: amortize feature extraction to O(n).
		fa := make([]recordFeatures, len(a))
		for i := range a {
			fa[i] = featurize(a[i])
		}
		fb := make([]recordFeatures, len(b))
		for j := range b {
			fb[j] = featurize(b[j])
		}
		for i := range a {
			for j := range b {
				p.route(res, ScoredPair{Pair{i, j}, fastCombined(fa[i], fb[j])})
			}
		}
	} else {
		for i := range a {
			for j := range b {
				p.route(res, ScoredPair{Pair{i, j}, p.Sim(a[i], b[j])})
			}
		}
	}
	p.sortCandidates(res)
	return res, nil
}

// SelfPairs scores every unordered pair within one record list.
func (p *Pruner) SelfPairs(records []string) (*PruneResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(records)
	res := &PruneResult{TotalPairs: n * (n - 1) / 2}
	if p.Sim == nil {
		feats := make([]recordFeatures, n)
		for i := range records {
			feats[i] = featurize(records[i])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				p.route(res, ScoredPair{Pair{i, j}, fastCombined(feats[i], feats[j])})
			}
		}
	} else {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				p.route(res, ScoredPair{Pair{i, j}, p.Sim(records[i], records[j])})
			}
		}
	}
	p.sortCandidates(res)
	return res, nil
}

func (p *Pruner) validate() error {
	if p.Low < 0 || p.Low > 1 {
		return fmt.Errorf("cost: pruning threshold %v outside [0,1]", p.Low)
	}
	if p.High < p.Low {
		return fmt.Errorf("cost: auto-accept threshold %v below pruning threshold %v",
			p.High, p.Low)
	}
	return nil
}

func (p *Pruner) route(res *PruneResult, sp ScoredPair) {
	switch {
	case sp.Sim >= p.High:
		res.AutoMatch = append(res.AutoMatch, sp)
	case sp.Sim >= p.Low:
		res.Candidates = append(res.Candidates, sp)
	default:
		res.PrunedCount++
	}
}

func (p *Pruner) sortCandidates(res *PruneResult) {
	sort.SliceStable(res.Candidates, func(a, b int) bool {
		if res.Candidates[a].Sim != res.Candidates[b].Sim {
			return res.Candidates[a].Sim > res.Candidates[b].Sim
		}
		if res.Candidates[a].I != res.Candidates[b].I {
			return res.Candidates[a].I < res.Candidates[b].I
		}
		return res.Candidates[a].J < res.Candidates[b].J
	})
}

// PRF holds precision/recall/F1 of a predicted match set against truth.
type PRF struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

// EvaluatePairs compares predicted match pairs against the true match
// set. Pairs are normalized so order within a pair does not matter for
// self-joins when selfJoin is true.
func EvaluatePairs(predicted, actual []Pair, selfJoin bool) PRF {
	norm := func(p Pair) Pair {
		if selfJoin && p.J < p.I {
			return Pair{p.J, p.I}
		}
		return p
	}
	truth := make(map[Pair]bool, len(actual))
	for _, p := range actual {
		truth[norm(p)] = true
	}
	pred := make(map[Pair]bool, len(predicted))
	for _, p := range predicted {
		pred[norm(p)] = true
	}
	var r PRF
	for p := range pred {
		if truth[p] {
			r.TP++
		} else {
			r.FP++
		}
	}
	for p := range truth {
		if !pred[p] {
			r.FN++
		}
	}
	if r.TP+r.FP > 0 {
		r.Precision = float64(r.TP) / float64(r.TP+r.FP)
	}
	if r.TP+r.FN > 0 {
		r.Recall = float64(r.TP) / float64(r.TP+r.FN)
	}
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	return r
}
