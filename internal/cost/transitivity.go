package cost

import (
	"fmt"
	"sort"
)

// Verdict is the outcome of a match question about a pair of records.
type Verdict int

const (
	// Unknown means the pair's status cannot be deduced yet.
	Unknown Verdict = iota
	// Match means the records refer to the same entity.
	Match
	// NonMatch means they refer to different entities.
	NonMatch
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Match:
		return "match"
	case NonMatch:
		return "non-match"
	default:
		return "unknown"
	}
}

// Transitivity performs answer deduction for entity resolution: recorded
// match answers merge records into clusters (union–find), recorded
// non-match answers separate clusters, and the positive and negative
// transitive closures let the system skip asking the crowd about pairs
// whose answer is already implied.
//
//	match(a,b) ∧ match(b,c)     ⇒ match(a,c)
//	match(a,b) ∧ nonmatch(b,c)  ⇒ nonmatch(a,c)
//
// This is the deduction rule set behind crowdsourced-join cost savings in
// the literature; with candidate pairs processed in descending similarity
// order, most true matches arrive early and the deduced fraction grows.
type Transitivity struct {
	parent []int
	rank   []int
	// conflicts maps a cluster root to the set of cluster roots it is
	// known to differ from.
	conflicts map[int]map[int]bool
	// inconsistencies counts crowd answers that contradicted the closure.
	inconsistencies int
}

// NewTransitivity creates a deduction structure over n records (indices
// 0..n-1), initially all singleton clusters with no constraints.
func NewTransitivity(n int) *Transitivity {
	t := &Transitivity{
		parent:    make([]int, n),
		rank:      make([]int, n),
		conflicts: make(map[int]map[int]bool),
	}
	for i := range t.parent {
		t.parent[i] = i
	}
	return t
}

// N returns the number of records.
func (t *Transitivity) N() int { return len(t.parent) }

func (t *Transitivity) find(x int) int {
	for t.parent[x] != x {
		t.parent[x] = t.parent[t.parent[x]] // path halving
		x = t.parent[x]
	}
	return x
}

func (t *Transitivity) checkIndex(i int) error {
	if i < 0 || i >= len(t.parent) {
		return fmt.Errorf("cost: record index %d out of range [0,%d)", i, len(t.parent))
	}
	return nil
}

// Deduce returns the implied verdict for pair (i, j): Match if they are in
// the same cluster, NonMatch if their clusters are known to conflict,
// Unknown otherwise.
func (t *Transitivity) Deduce(i, j int) Verdict {
	if t.checkIndex(i) != nil || t.checkIndex(j) != nil {
		return Unknown
	}
	ri, rj := t.find(i), t.find(j)
	if ri == rj {
		return Match
	}
	if t.conflicts[ri][rj] {
		return NonMatch
	}
	return Unknown
}

// RecordMatch registers a crowd answer that i and j match. If the closure
// already implies they do NOT match, the answer is counted as an
// inconsistency and ignored (the earlier evidence wins), and an error is
// returned for the caller's accounting.
func (t *Transitivity) RecordMatch(i, j int) error {
	if err := t.checkIndex(i); err != nil {
		return err
	}
	if err := t.checkIndex(j); err != nil {
		return err
	}
	ri, rj := t.find(i), t.find(j)
	if ri == rj {
		return nil // already known
	}
	if t.conflicts[ri][rj] {
		t.inconsistencies++
		return fmt.Errorf("cost: match(%d,%d) contradicts deduced non-match", i, j)
	}
	// Union by rank; fold the absorbed root's conflicts into the survivor.
	if t.rank[ri] < t.rank[rj] {
		ri, rj = rj, ri
	}
	t.parent[rj] = ri
	if t.rank[ri] == t.rank[rj] {
		t.rank[ri]++
	}
	for c := range t.conflicts[rj] {
		delete(t.conflicts[c], rj)
		t.addConflict(ri, c)
	}
	delete(t.conflicts, rj)
	return nil
}

// RecordNonMatch registers a crowd answer that i and j do not match. If
// the closure already implies they DO match, the answer is counted as an
// inconsistency and ignored.
func (t *Transitivity) RecordNonMatch(i, j int) error {
	if err := t.checkIndex(i); err != nil {
		return err
	}
	if err := t.checkIndex(j); err != nil {
		return err
	}
	ri, rj := t.find(i), t.find(j)
	if ri == rj {
		t.inconsistencies++
		return fmt.Errorf("cost: nonmatch(%d,%d) contradicts deduced match", i, j)
	}
	t.addConflict(ri, rj)
	return nil
}

func (t *Transitivity) addConflict(a, b int) {
	if t.conflicts[a] == nil {
		t.conflicts[a] = make(map[int]bool)
	}
	if t.conflicts[b] == nil {
		t.conflicts[b] = make(map[int]bool)
	}
	t.conflicts[a][b] = true
	t.conflicts[b][a] = true
}

// Inconsistencies returns how many crowd answers contradicted the closure.
func (t *Transitivity) Inconsistencies() int { return t.inconsistencies }

// Clusters returns the current entity clusters as sorted slices of record
// indices, ordered by their smallest member.
func (t *Transitivity) Clusters() [][]int {
	groups := make(map[int][]int)
	for i := range t.parent {
		r := t.find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// MatchedPairs enumerates every pair implied matched by the clustering
// (i < j).
func (t *Transitivity) MatchedPairs() []Pair {
	var out []Pair
	for _, c := range t.Clusters() {
		for a := 0; a < len(c); a++ {
			for b := a + 1; b < len(c); b++ {
				out = append(out, Pair{c[a], c[b]})
			}
		}
	}
	return out
}

// DeductionStats summarizes a deduction-aware pass over candidate pairs.
type DeductionStats struct {
	Asked          int // pairs sent to the oracle
	DeducedMatch   int // pairs skipped because Match was implied
	DeducedNon     int // pairs skipped because NonMatch was implied
	Inconsistent   int // oracle answers that contradicted the closure
	OracleMatch    int // oracle said match
	OracleNonMatch int // oracle said non-match
}

// ResolveWithOracle processes candidate pairs in order, skipping pairs
// whose verdict is already deduced and otherwise consulting the oracle
// (the crowd, in production; a simulated answerer in experiments). It
// returns the deduction statistics; the final clustering is available on
// t afterwards.
func (t *Transitivity) ResolveWithOracle(pairs []Pair, oracle func(Pair) Verdict) DeductionStats {
	var st DeductionStats
	for _, p := range pairs {
		switch t.Deduce(p.I, p.J) {
		case Match:
			st.DeducedMatch++
			continue
		case NonMatch:
			st.DeducedNon++
			continue
		}
		st.Asked++
		switch oracle(p) {
		case Match:
			st.OracleMatch++
			if err := t.RecordMatch(p.I, p.J); err != nil {
				st.Inconsistent++
			}
		case NonMatch:
			st.OracleNonMatch++
			if err := t.RecordNonMatch(p.I, p.J); err != nil {
				st.Inconsistent++
			}
		}
	}
	return st
}
