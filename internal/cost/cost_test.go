package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! 2x fast")
	want := []string{"hello", "world", "2x", "fast"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v", got)
		}
	}
}

func TestJaccard(t *testing.T) {
	if s := Jaccard("apple iphone 6", "apple iphone 6"); s != 1 {
		t.Fatalf("identical strings: %v", s)
	}
	if s := Jaccard("apple iphone", "samsung galaxy"); s != 0 {
		t.Fatalf("disjoint strings: %v", s)
	}
	if s := Jaccard("a b c d", "a b"); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("half overlap: %v", s)
	}
	if s := Jaccard("", ""); s != 1 {
		t.Fatalf("empty vs empty: %v", s)
	}
	if s := Jaccard("x", ""); s != 0 {
		t.Fatalf("nonempty vs empty: %v", s)
	}
	// Duplicated tokens count once.
	if s := Jaccard("a a a b", "a b"); s != 1 {
		t.Fatalf("multiset handling: %v", s)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	// Symmetry and identity-of-indiscernibles on short random strings.
	err := quick.Check(func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		d1, d2 := EditDistance(a, b), EditDistance(b, a)
		if d1 != d2 {
			return false
		}
		if a == b && d1 != 0 {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEditSimilarity(t *testing.T) {
	if s := EditSimilarity("abc", "abc"); s != 1 {
		t.Fatalf("identical: %v", s)
	}
	if s := EditSimilarity("", ""); s != 1 {
		t.Fatalf("empty: %v", s)
	}
	if s := EditSimilarity("abcd", "wxyz"); s != 0 {
		t.Fatalf("totally different same-length: %v", s)
	}
}

func TestNGramSimilarity(t *testing.T) {
	if s := NGramSimilarity("iphone", "iphone", 2); s != 1 {
		t.Fatalf("identical: %v", s)
	}
	if s := NGramSimilarity("iphone", "iphnoe", 2); s <= 0 || s >= 1 {
		t.Fatalf("typo similarity should be in (0,1): %v", s)
	}
	if s := NGramSimilarity("", "", 2); s != 1 {
		t.Fatalf("empty: %v", s)
	}
	if s := NGramSimilarity("a", "a", 3); s != 1 {
		t.Fatalf("short-string gram: %v", s)
	}
}

func TestCombinedSimilarityOrdering(t *testing.T) {
	near := CombinedSimilarity("apple iphone 6s 64gb", "apple iphone 6s 64 gb")
	far := CombinedSimilarity("apple iphone 6s 64gb", "dell latitude laptop")
	if near <= far {
		t.Fatalf("near %v should beat far %v", near, far)
	}
}

func TestPrunerCrossPairs(t *testing.T) {
	a := []string{"apple iphone 6", "samsung galaxy s7"}
	b := []string{"iphone 6 apple", "lg washing machine"}
	p := &Pruner{Low: 0.3, High: 0.99}
	res, err := p.CrossPairs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPairs != 4 {
		t.Fatalf("TotalPairs = %d", res.TotalPairs)
	}
	if len(res.Candidates)+len(res.AutoMatch)+res.PrunedCount != 4 {
		t.Fatalf("partition does not cover all pairs: %+v", res)
	}
	// The permuted iPhone pair must survive pruning.
	found := false
	for _, c := range res.Candidates {
		if c.I == 0 && c.J == 0 {
			found = true
		}
	}
	for _, c := range res.AutoMatch {
		if c.I == 0 && c.J == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("true match was pruned")
	}
	// Candidates sorted by descending similarity.
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].Sim > res.Candidates[i-1].Sim {
			t.Fatal("candidates not sorted by similarity")
		}
	}
}

func TestPrunerSelfPairs(t *testing.T) {
	recs := []string{"a b", "a b", "x y"}
	p := &Pruner{Low: 0.5, High: 0.95}
	res, err := p.SelfPairs(recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPairs != 3 {
		t.Fatalf("TotalPairs = %d", res.TotalPairs)
	}
	if len(res.AutoMatch) != 1 || res.AutoMatch[0].Pair != (Pair{0, 1}) {
		t.Fatalf("AutoMatch = %v", res.AutoMatch)
	}
	if res.PrunedCount != 2 {
		t.Fatalf("PrunedCount = %d", res.PrunedCount)
	}
}

func TestPrunerValidation(t *testing.T) {
	if _, err := (&Pruner{Low: -0.1, High: 1}).SelfPairs(nil); err == nil {
		t.Fatal("negative Low should fail")
	}
	if _, err := (&Pruner{Low: 0.8, High: 0.5}).SelfPairs(nil); err == nil {
		t.Fatal("High < Low should fail")
	}
}

func TestEvaluatePairs(t *testing.T) {
	pred := []Pair{{0, 1}, {2, 3}, {4, 5}}
	actual := []Pair{{1, 0}, {2, 3}, {6, 7}}
	r := EvaluatePairs(pred, actual, true)
	if r.TP != 2 || r.FP != 1 || r.FN != 1 {
		t.Fatalf("counts = %+v", r)
	}
	if math.Abs(r.Precision-2.0/3.0) > 1e-12 || math.Abs(r.Recall-2.0/3.0) > 1e-12 {
		t.Fatalf("PRF = %+v", r)
	}
	// Without self-join normalization, (1,0) != (0,1).
	r2 := EvaluatePairs(pred, actual, false)
	if r2.TP != 1 {
		t.Fatalf("non-self TP = %d", r2.TP)
	}
	empty := EvaluatePairs(nil, nil, true)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1 != 0 {
		t.Fatalf("empty eval = %+v", empty)
	}
}

func TestTransitivityDeduction(t *testing.T) {
	tr := NewTransitivity(5)
	if v := tr.Deduce(0, 1); v != Unknown {
		t.Fatalf("fresh pair verdict %v", v)
	}
	if err := tr.RecordMatch(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.RecordMatch(1, 2); err != nil {
		t.Fatal(err)
	}
	// Positive transitivity: 0-2 implied.
	if v := tr.Deduce(0, 2); v != Match {
		t.Fatalf("Deduce(0,2) = %v", v)
	}
	// Negative deduction: 3 differs from 1 => differs from whole cluster.
	if err := tr.RecordNonMatch(1, 3); err != nil {
		t.Fatal(err)
	}
	if v := tr.Deduce(0, 3); v != NonMatch {
		t.Fatalf("Deduce(0,3) = %v", v)
	}
	if v := tr.Deduce(2, 3); v != NonMatch {
		t.Fatalf("Deduce(2,3) = %v", v)
	}
	// 4 is unconstrained.
	if v := tr.Deduce(0, 4); v != Unknown {
		t.Fatalf("Deduce(0,4) = %v", v)
	}
}

func TestTransitivityInconsistencies(t *testing.T) {
	tr := NewTransitivity(3)
	tr.RecordMatch(0, 1)
	if err := tr.RecordNonMatch(0, 1); err == nil {
		t.Fatal("contradicting non-match should error")
	}
	tr.RecordNonMatch(1, 2)
	if err := tr.RecordMatch(0, 2); err == nil {
		t.Fatal("contradicting match should error")
	}
	if tr.Inconsistencies() != 2 {
		t.Fatalf("inconsistencies = %d", tr.Inconsistencies())
	}
	// The earlier evidence wins: 0,2 still non-match.
	if v := tr.Deduce(0, 2); v != NonMatch {
		t.Fatalf("verdict after inconsistent answer = %v", v)
	}
}

func TestTransitivityConflictMergeOnUnion(t *testing.T) {
	// Conflicts recorded against a root must survive that root being
	// absorbed into another cluster.
	tr := NewTransitivity(4)
	tr.RecordNonMatch(2, 3)
	tr.RecordMatch(0, 2) // 2's cluster merges with 0's
	tr.RecordMatch(0, 1)
	if v := tr.Deduce(1, 3); v != NonMatch {
		t.Fatalf("conflict lost across union: Deduce(1,3) = %v", v)
	}
}

func TestTransitivityClustersAndPairs(t *testing.T) {
	tr := NewTransitivity(5)
	tr.RecordMatch(0, 1)
	tr.RecordMatch(3, 4)
	cl := tr.Clusters()
	if len(cl) != 3 {
		t.Fatalf("clusters = %v", cl)
	}
	if cl[0][0] != 0 || cl[0][1] != 1 || cl[1][0] != 2 {
		t.Fatalf("cluster ordering = %v", cl)
	}
	pairs := tr.MatchedPairs()
	if len(pairs) != 2 {
		t.Fatalf("matched pairs = %v", pairs)
	}
}

func TestTransitivityIndexValidation(t *testing.T) {
	tr := NewTransitivity(2)
	if err := tr.RecordMatch(0, 5); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	if v := tr.Deduce(-1, 0); v != Unknown {
		t.Fatal("out-of-range deduce should be Unknown")
	}
}

func TestResolveWithOracleSavesQuestions(t *testing.T) {
	// Ground truth: 3 clusters of 4 records each (12 records, 66 pairs).
	truthCluster := func(i int) int { return i / 4 }
	var pairs []Pair
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			pairs = append(pairs, Pair{i, j})
		}
	}
	// Order pairs match-first (as descending-similarity ordering would):
	var ordered []Pair
	for _, p := range pairs {
		if truthCluster(p.I) == truthCluster(p.J) {
			ordered = append(ordered, p)
		}
	}
	nMatches := len(ordered)
	for _, p := range pairs {
		if truthCluster(p.I) != truthCluster(p.J) {
			ordered = append(ordered, p)
		}
	}
	tr := NewTransitivity(12)
	st := tr.ResolveWithOracle(ordered, func(p Pair) Verdict {
		if truthCluster(p.I) == truthCluster(p.J) {
			return Match
		}
		return NonMatch
	})
	if st.Asked >= len(pairs) {
		t.Fatalf("deduction saved nothing: asked %d of %d", st.Asked, len(pairs))
	}
	if st.DeducedMatch == 0 || st.DeducedNon == 0 {
		t.Fatalf("expected both kinds of deduction: %+v", st)
	}
	// Each 4-cluster needs only 3 match questions: positive closure
	// deduces the remaining 3 pairs per cluster.
	if st.Asked+st.DeducedMatch+st.DeducedNon != len(pairs) {
		t.Fatalf("coverage mismatch: %+v over %d pairs", st, len(pairs))
	}
	if st.DeducedMatch != nMatches-9 {
		t.Fatalf("deduced matches = %d, want %d", st.DeducedMatch, nMatches-9)
	}
	// Final clustering exactly recovers ground truth.
	cl := tr.Clusters()
	if len(cl) != 3 {
		t.Fatalf("recovered %d clusters", len(cl))
	}
	for _, c := range cl {
		if len(c) != 4 {
			t.Fatalf("cluster sizes wrong: %v", cl)
		}
	}
}

func TestEstimateSelectivity(t *testing.T) {
	rng := stats.NewRNG(20)
	labels := make([]bool, 400)
	for i := range labels {
		labels[i] = rng.Bool(0.3)
	}
	est, err := EstimateSelectivity(labels, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.P-0.3) > 0.06 {
		t.Fatalf("estimated selectivity %v", est.P)
	}
	if est.CountLo > est.Count || est.Count > est.CountHi {
		t.Fatalf("CI does not bracket estimate: %+v", est)
	}
	if est.CountLo < 0 || est.CountHi > 10000 {
		t.Fatalf("CI outside population bounds: %+v", est)
	}
	if _, err := EstimateSelectivity(nil, 10); err == nil {
		t.Fatal("empty sample should fail")
	}
	if _, err := EstimateSelectivity(labels, 10); err == nil {
		t.Fatal("population < sample should fail")
	}
}

func TestFinitePopulationCorrection(t *testing.T) {
	labels := make([]bool, 100)
	for i := range labels {
		labels[i] = i%2 == 0
	}
	// Sampling the whole population should have ~zero stderr.
	full, _ := EstimateSelectivity(labels, 100)
	partial, _ := EstimateSelectivity(labels, 100000)
	if full.StdErr >= partial.StdErr {
		t.Fatalf("FPC not applied: full %v >= partial %v", full.StdErr, partial.StdErr)
	}
	if full.StdErr > 1e-9 {
		t.Fatalf("census stderr = %v, want ~0", full.StdErr)
	}
}

func TestSampleSizeFor(t *testing.T) {
	n, err := SampleSizeFor(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if n < 380 || n > 390 {
		t.Fatalf("n for 5%% margin = %d, want ~385", n)
	}
	if _, err := SampleSizeFor(0); err == nil {
		t.Fatal("zero margin should fail")
	}
	// Tighter margins need more samples.
	n1, _ := SampleSizeFor(0.01)
	if n1 <= n {
		t.Fatalf("1%% margin %d should exceed 5%% margin %d", n1, n)
	}
}

func TestEstimateMean(t *testing.T) {
	est, err := EstimateMean([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 3 {
		t.Fatalf("mean = %v", est.Mean)
	}
	if !(est.Lo < 3 && 3 < est.Hi) {
		t.Fatalf("CI = [%v, %v]", est.Lo, est.Hi)
	}
	if _, err := EstimateMean(nil); err == nil {
		t.Fatal("empty sample should fail")
	}
}

func TestBatch(t *testing.T) {
	items := []int{1, 2, 3, 4, 5, 6, 7}
	bs := Batch(items, 3)
	if len(bs) != 3 || len(bs[0]) != 3 || len(bs[2]) != 1 {
		t.Fatalf("Batch = %v", bs)
	}
	if len(Batch(items, 0)) != 7 {
		t.Fatal("size 0 should batch singly")
	}
	if Batch([]int{}, 3) != nil {
		t.Fatal("empty input should yield no batches")
	}
	if BatchedTaskCount(10, 4) != 3 || BatchedTaskCount(0, 4) != 0 || BatchedTaskCount(5, 0) != 5 {
		t.Fatal("BatchedTaskCount wrong")
	}
}

// TestTransitivityMatchesReferencePartition drives random consistent
// match/non-match answers (derived from a hidden partition) through the
// closure and checks every Deduce against the partition.
func TestTransitivityMatchesReferencePartition(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(16)
		partition := make([]int, n)
		k := 1 + rng.Intn(5)
		for i := range partition {
			partition[i] = rng.Intn(k)
		}
		tr := NewTransitivity(n)
		// Feed a random sequence of consistent facts.
		for step := 0; step < n*3; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			if partition[i] == partition[j] {
				if err := tr.RecordMatch(i, j); err != nil {
					t.Fatalf("consistent match rejected: %v", err)
				}
			} else {
				if err := tr.RecordNonMatch(i, j); err != nil {
					t.Fatalf("consistent non-match rejected: %v", err)
				}
			}
		}
		if tr.Inconsistencies() != 0 {
			t.Fatalf("consistent input produced %d inconsistencies", tr.Inconsistencies())
		}
		// Every deduction must agree with the partition (soundness).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				switch tr.Deduce(i, j) {
				case Match:
					if partition[i] != partition[j] {
						t.Fatalf("deduced match for cross-partition pair (%d,%d)", i, j)
					}
				case NonMatch:
					if partition[i] == partition[j] {
						t.Fatalf("deduced non-match for same-partition pair (%d,%d)", i, j)
					}
				}
			}
		}
	}
}

// TestFastCombinedMatchesCombinedSimilarity pins the precomputed-feature
// fast path to the reference implementation.
func TestFastCombinedMatchesCombinedSimilarity(t *testing.T) {
	rng := stats.NewRNG(88)
	vocab := []string{"acme", "phone", "pro", "silver", "443", "x", ""}
	gen := func() string {
		n := rng.Intn(5)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = vocab[rng.Intn(len(vocab))]
		}
		return strings.Join(parts, " ")
	}
	for i := 0; i < 2000; i++ {
		a, b := gen(), gen()
		want := CombinedSimilarity(a, b)
		got := fastCombined(featurize(a), featurize(b))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("fastCombined(%q, %q) = %v, reference %v", a, b, got, want)
		}
	}
}

func TestPrunerCustomSimStillUsed(t *testing.T) {
	// A custom similarity must override the fast path.
	p := &Pruner{Low: 0.5, High: 2, Sim: func(a, b string) float64 { return 0.9 }}
	res, err := p.SelfPairs([]string{"x", "completely different"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 {
		t.Fatalf("custom sim ignored: %+v", res)
	}
}
