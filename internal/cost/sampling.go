package cost

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// SelectivityEstimate is the result of sampling-based selectivity /
// count estimation for crowd-powered aggregation: ask the crowd about a
// random sample of items, extrapolate to the population.
type SelectivityEstimate struct {
	// P is the estimated selectivity (fraction of items satisfying the
	// predicate).
	P float64
	// StdErr is the standard error of P.
	StdErr float64
	// Count is the extrapolated population count.
	Count float64
	// CountLo and CountHi bound the ~95% confidence interval on Count.
	CountLo, CountHi float64
	// SampleSize is the number of sampled labels used.
	SampleSize int
	// Population is the population size used for extrapolation.
	Population int
}

// EstimateSelectivity computes the estimate from sampled boolean labels
// over a population of size population, with finite-population correction.
func EstimateSelectivity(labels []bool, population int) (*SelectivityEstimate, error) {
	n := len(labels)
	if n == 0 {
		return nil, fmt.Errorf("cost: empty sample")
	}
	if population < n {
		return nil, fmt.Errorf("cost: population %d smaller than sample %d", population, n)
	}
	pos := 0
	for _, l := range labels {
		if l {
			pos++
		}
	}
	p := float64(pos) / float64(n)
	se := math.Sqrt(p * (1 - p) / float64(n))
	if population > 1 {
		// Finite-population correction tightens the interval as the sample
		// approaches the population.
		fpc := math.Sqrt(float64(population-n) / float64(population-1))
		se *= fpc
	}
	est := &SelectivityEstimate{
		P:          p,
		StdErr:     se,
		Count:      p * float64(population),
		SampleSize: n,
		Population: population,
	}
	z := 1.96
	est.CountLo = math.Max(0, (p-z*se)*float64(population))
	est.CountHi = math.Min(float64(population), (p+z*se)*float64(population))
	return est, nil
}

// SampleSizeFor returns the sample size needed so that a proportion
// estimate has half-width <= margin at ~95% confidence, using the
// conservative p = 0.5 variance bound.
func SampleSizeFor(margin float64) (int, error) {
	if margin <= 0 || margin >= 1 {
		return 0, fmt.Errorf("cost: margin %v outside (0,1)", margin)
	}
	z := 1.96
	n := (z * z * 0.25) / (margin * margin)
	return int(math.Ceil(n)), nil
}

// MeanEstimate is a sampling-based estimate of a population mean (used by
// crowd-powered AVG/SUM).
type MeanEstimate struct {
	Mean       float64
	StdErr     float64
	Lo, Hi     float64 // ~95% CI
	SampleSize int
}

// EstimateMean computes the estimate from sampled numeric values.
func EstimateMean(values []float64) (*MeanEstimate, error) {
	n := len(values)
	if n == 0 {
		return nil, fmt.Errorf("cost: empty sample")
	}
	m := stats.Mean(values)
	se := stats.StdDev(values) / math.Sqrt(float64(n))
	return &MeanEstimate{
		Mean: m, StdErr: se,
		Lo: m - 1.96*se, Hi: m + 1.96*se,
		SampleSize: n,
	}, nil
}

// Batch groups items into consecutive batches of the given size — the
// task-batching cost optimization (one HIT shows several pairs/items).
// The final batch may be smaller. size <= 0 yields one batch per item.
func Batch[T any](items []T, size int) [][]T {
	if size <= 0 {
		size = 1
	}
	var out [][]T
	for start := 0; start < len(items); start += size {
		end := start + size
		if end > len(items) {
			end = len(items)
		}
		out = append(out, items[start:end])
	}
	return out
}

// BatchedTaskCount returns how many crowd tasks are needed to cover n
// items at the given batch size — the headline cost saving of batching.
func BatchedTaskCount(n, size int) int {
	if n <= 0 {
		return 0
	}
	if size <= 0 {
		size = 1
	}
	return (n + size - 1) / size
}
