package cost

import (
	"fmt"
	"testing"

	"repro/internal/stats"
)

func BenchmarkCombinedSimilarity(b *testing.B) {
	a := "acme phone pro 443 silver e17"
	c := "acme phoen pro 443 silvr e17"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CombinedSimilarity(a, c)
	}
}

func BenchmarkSelfPairs500(b *testing.B) {
	rng := stats.NewRNG(1)
	recs := make([]string, 500)
	for i := range recs {
		recs[i] = fmt.Sprintf("record %d token%d extra%d", i, rng.Intn(50), rng.Intn(50))
	}
	p := &Pruner{Low: 0.3, High: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SelfPairs(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitivityResolve(b *testing.B) {
	// 400 records in clusters of 4; resolve all pairs with a perfect oracle.
	const n = 400
	entityOf := func(i int) int { return i / 4 }
	var matchFirst, rest []Pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if entityOf(i) == entityOf(j) {
				matchFirst = append(matchFirst, Pair{i, j})
			} else if len(rest) < 30000 {
				rest = append(rest, Pair{i, j})
			}
		}
	}
	ordered := append(matchFirst, rest...)
	oracle := func(p Pair) Verdict {
		if entityOf(p.I) == entityOf(p.J) {
			return Match
		}
		return NonMatch
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTransitivity(n)
		tr.ResolveWithOracle(ordered, oracle)
	}
}
