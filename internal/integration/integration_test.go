// Package integration_test exercises crowdkit end-to-end across module
// boundaries: realistic workloads flowing through datagen → crowd →
// platform/assignment → operators/CQL → truth inference → evaluation.
package integration_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cql"
	"repro/internal/crowd"
	"repro/internal/datagen"
	"repro/internal/model"
	"repro/internal/operators"
	"repro/internal/stats"
	"repro/internal/truth"
)

// TestLabelingPipelineEndToEnd drives the full quality-control stack on
// one workload: golden-task screening + uncertainty assignment under a
// budget + EM inference, and checks the combined system beats the naive
// baseline (random assignment, majority vote, no screening) on the same
// crowd and budget.
func TestLabelingPipelineEndToEnd(t *testing.T) {
	build := func() (*core.Pool, []core.TaskID) {
		rng := stats.NewRNG(1000)
		pool := core.NewPool()
		// 30 easy golden tasks + 300 real tasks.
		for i := 0; i < 30; i++ {
			pool.MustAdd(&core.Task{
				ID: core.TaskID(i + 1), Kind: core.SingleChoice,
				Options: []string{"no", "yes"}, GroundTruth: i % 2,
				Difficulty: 0.05, Golden: true,
			})
		}
		var ids []core.TaskID
		for i := 0; i < 300; i++ {
			id := pool.MustAdd(&core.Task{
				ID: core.TaskID(i + 31), Kind: core.SingleChoice,
				Options: []string{"no", "yes"}, GroundTruth: rng.Intn(2),
				Difficulty: rng.Beta(2, 5),
			})
			ids = append(ids, id)
		}
		return pool, ids
	}
	newCrowd := func() []core.Worker {
		return crowd.AsCoreWorkers(crowd.NewPopulation(stats.NewRNG(1001), 40, crowd.RegimeSpammy))
	}
	const budget = 1600

	// Naive arm.
	poolN, idsN := build()
	plN := core.NewPlatform(poolN, newCrowd(), core.NewBudget(budget))
	rngN := stats.NewRNG(1002)
	if _, err := plN.CollectBudget(&assign.Random{RNG: rngN}); err != nil &&
		!errors.Is(err, core.ErrBudgetExhausted) {
		t.Fatal(err)
	}
	dsN, err := truth.FromPool(poolN, idsN)
	if err != nil {
		t.Fatal(err)
	}
	mvRes, err := truth.MajorityVote{}.Infer(dsN)
	if err != nil {
		t.Fatal(err)
	}
	naiveAcc := truth.Accuracy(mvRes, poolN, dsN)

	// Full stack arm.
	poolS, idsS := build()
	plS := core.NewPlatform(poolS, newCrowd(), core.NewBudget(budget))
	plS.Screen = core.NewWorkerScreen(3, 0.6)
	if _, err := plS.CollectBudget(assign.Uncertainty{}); err != nil &&
		!errors.Is(err, core.ErrBudgetExhausted) {
		t.Fatal(err)
	}
	dsS, err := truth.FromPool(poolS, idsS)
	if err != nil {
		t.Fatal(err)
	}
	emRes, err := truth.OneCoinEM{}.Infer(dsS)
	if err != nil {
		t.Fatal(err)
	}
	stackAcc := truth.Accuracy(emRes, poolS, dsS)

	if stackAcc <= naiveAcc {
		t.Fatalf("full stack %.3f should beat naive baseline %.3f", stackAcc, naiveAcc)
	}
	if stackAcc < 0.85 {
		t.Fatalf("full stack accuracy implausibly low: %.3f", stackAcc)
	}
}

// TestERThroughCQL loads a generated ER catalog into the declarative
// layer, runs the crowd join, and scores the joined pairs against the
// planted clustering.
func TestERThroughCQL(t *testing.T) {
	rng := stats.NewRNG(1100)
	data, err := datagen.NewERDataset(rng, datagen.ERConfig{
		Entities: 25, DupMean: 2, Noise: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := crowd.NewPopulation(rng, 40, crowd.RegimeReliable)
	runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, rng.Split())
	s := cql.NewSession(cql.NewCatalog(), runner, rng.Split())
	entityByRecord := make(map[string]int, len(data.Records))
	for i, r := range data.Records {
		entityByRecord[r] = data.Entity[i]
	}
	s.Oracle = &cql.SimOracle{
		Equal: func(a, b string) bool {
			ea, oka := entityByRecord[a]
			eb, okb := entityByRecord[b]
			return oka && okb && ea == eb
		},
	}
	mustExec := func(q string) *model.Relation {
		rel, err := s.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return rel
	}
	mustExec(`CREATE TABLE a (aid INT, adesc STRING)`)
	mustExec(`CREATE TABLE b (bid INT, bdesc STRING)`)
	// Split records across two tables (cross-source dedup).
	var ins1, ins2 strings.Builder
	ins1.WriteString(`INSERT INTO a VALUES `)
	ins2.WriteString(`INSERT INTO b VALUES `)
	n1, n2 := 0, 0
	for i, r := range data.Records {
		esc := strings.ReplaceAll(r, "'", "''")
		if i%2 == 0 {
			if n1 > 0 {
				ins1.WriteString(", ")
			}
			fmt.Fprintf(&ins1, "(%d, '%s')", i, esc)
			n1++
		} else {
			if n2 > 0 {
				ins2.WriteString(", ")
			}
			fmt.Fprintf(&ins2, "(%d, '%s')", i, esc)
			n2++
		}
	}
	mustExec(ins1.String())
	mustExec(ins2.String())

	rel := mustExec(`SELECT aid, bid FROM a CROWDJOIN b ON a.adesc ~= b.bdesc`)
	// Score joined (aid,bid) pairs against the planted clustering.
	var predicted, actual []cost.Pair
	for _, row := range rel.Tuples {
		predicted = append(predicted, cost.Pair{I: int(row[0].AsInt()), J: int(row[1].AsInt())})
	}
	for i := 0; i < len(data.Records); i++ {
		for j := 1; j < len(data.Records); j += 2 {
			if i%2 == 0 && data.Entity[i] == data.Entity[j] && i != j {
				actual = append(actual, cost.Pair{I: i, J: j})
			}
		}
	}
	prf := cost.EvaluatePairs(predicted, actual, false)
	if prf.F1 < 0.85 {
		t.Fatalf("CQL crowd join F1 = %.3f (P %.3f R %.3f)", prf.F1, prf.Precision, prf.Recall)
	}
	if s.Stats.CrowdJoinPairs == 0 {
		t.Fatal("crowd join asked nothing")
	}
}

// TestConfidenceStoppingSavesBudget compares fixed redundancy-5 against
// confidence-based early stopping end to end.
func TestConfidenceStoppingSavesBudget(t *testing.T) {
	build := func() *core.Pool {
		rng := stats.NewRNG(1200)
		pool := core.NewPool()
		for i := 0; i < 300; i++ {
			pool.MustAdd(&core.Task{
				ID: core.TaskID(i + 1), Kind: core.SingleChoice,
				Options: []string{"no", "yes"}, GroundTruth: rng.Intn(2),
				Difficulty: rng.Beta(2, 5),
			})
		}
		return pool
	}
	newCrowd := func() []core.Worker {
		return crowd.AsCoreWorkers(crowd.NewPopulation(stats.NewRNG(1201), 40, crowd.RegimeMixed))
	}
	score := func(pool *core.Pool) float64 {
		ds, err := truth.FromPool(pool, pool.TaskIDs())
		if err != nil {
			t.Fatal(err)
		}
		res, err := truth.OneCoinEM{}.Infer(ds)
		if err != nil {
			t.Fatal(err)
		}
		return truth.Accuracy(res, pool, ds)
	}

	// Arm 1: plain redundancy 5.
	poolA := build()
	plA := core.NewPlatform(poolA, newCrowd(), core.Unlimited())
	resA, err := plA.CollectRedundant(assign.FewestAnswers{}, 5)
	if err != nil {
		t.Fatal(err)
	}

	// Arm 2: redundancy up to 5, but a confidence stopper closes easy
	// tasks after 3 agreeing answers.
	poolB := build()
	plB := core.NewPlatform(poolB, newCrowd(), core.Unlimited())
	stopper := &assign.ConfidenceStopper{Threshold: 0.93, MinAnswers: 3,
		Quality: assign.ConstantQuality(0.8)}
	answersB := 0
	for {
		n, err := plB.Step(assign.FewestAnswers{})
		if err != nil {
			t.Fatal(err)
		}
		answersB += n
		stopper.Sweep(poolB)
		done := true
		for _, id := range poolB.OpenTasks() {
			if poolB.AnswerCount(id) < 5 {
				done = false
				break
			}
		}
		if done || n == 0 {
			break
		}
		for _, id := range poolB.OpenTasks() {
			if poolB.AnswerCount(id) >= 5 {
				poolB.Close(id)
			}
		}
	}

	accA, accB := score(poolA), score(poolB)
	if answersB >= resA.AnswersCollected {
		t.Fatalf("confidence stopping used %d answers vs fixed %d",
			answersB, resA.AnswersCollected)
	}
	if accB < accA-0.03 {
		t.Fatalf("early stopping accuracy %.3f collapsed vs fixed %.3f", accB, accA)
	}
}

// TestCQLFullFeatureScript runs one session through every crowd feature
// in sequence, asserting the session-level accounting adds up.
func TestCQLFullFeatureScript(t *testing.T) {
	rng := stats.NewRNG(1300)
	ws := crowd.NewPopulation(rng, 50, crowd.RegimeReliable)
	runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, rng)
	s := cql.NewSession(cql.NewCatalog(), runner, rng.Split())
	s.Oracle = &cql.SimOracle{
		Fill: func(table, column string, row model.Tuple, schema *model.Schema) (string, bool) {
			return fmt.Sprintf("filled-%d", row[0].AsInt()), true
		},
		Equal:  func(a, b string) bool { return strings.HasPrefix(a, b) },
		Filter: func(q string, v model.Value) bool { return v.AsInt()%2 == 0 },
	}
	script := `
		CREATE TABLE items (id INT, tag STRING CROWD);
		INSERT INTO items VALUES (1, NULL), (2, NULL), (3, NULL), (4, NULL);
		SELECT id, tag FROM items WHERE tag ~= 'filled';
		SELECT CROWDCOUNT('even?', id) AS evens FROM items;
		SELECT id FROM items CROWDORDER BY id DESC LIMIT 2;
	`
	rel, err := s.ExecuteScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("final statement rows = %d", rel.Len())
	}
	if v, _ := rel.Get(0, "id"); v.AsInt() != 4 {
		t.Fatalf("crowd order head = %v", rel.Tuples[0])
	}
	if s.Stats.Fills != 4 {
		t.Fatalf("fills = %d", s.Stats.Fills)
	}
	if s.Stats.CrowdFilterRows != 4 || s.Stats.CrowdCountSamples != 4 {
		t.Fatalf("stats = %+v", s.Stats)
	}
	if s.Stats.CrowdCompares != 6 {
		t.Fatalf("compares = %d, want C(4,2)=6", s.Stats.CrowdCompares)
	}
	if s.Stats.CrowdAnswers != runner.AnswersUsed {
		t.Fatalf("session answers %d != runner %d", s.Stats.CrowdAnswers, runner.AnswersUsed)
	}
}

// TestOperatorsShareOneBudget verifies several operators drawing from one
// budget stop collectively at the cap.
func TestOperatorsShareOneBudget(t *testing.T) {
	rng := stats.NewRNG(1400)
	ws := crowd.NewPopulation(rng, 30, crowd.RegimeReliable)
	budget := core.NewBudget(100)
	runner := operators.NewRunner(crowd.AsCoreWorkers(ws), budget, rng.Split())

	d, err := datagen.NewFilterDataset(rng, 40, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]operators.FilterItem, 40)
	for i := range items {
		items[i] = operators.FilterItem{Question: "q", Truth: d.Pass[i], Difficulty: 0.1}
	}
	// First operator consumes most of the budget.
	if _, err := operators.Filter(runner, items, operators.FixedK{K: 2}); err != nil {
		t.Fatal(err)
	}
	// Second operator must hit the budget wall.
	rank, err := datagen.NewRankingDataset(rng, 30)
	if err != nil {
		t.Fatal(err)
	}
	_, err = operators.AllPairsSort(runner, 30, intOracle{rank}, 3)
	if !errors.Is(err, core.ErrBudgetExhausted) {
		t.Fatalf("expected shared budget exhaustion, got %v", err)
	}
	if runner.AnswersUsed != 100 {
		t.Fatalf("answers used %d != budget 100", runner.AnswersUsed)
	}
}

type intOracle struct{ d *datagen.RankingDataset }

func (o intOracle) Truth(i, j int) (bool, float64) {
	return o.d.Better(i, j), o.d.PairDifficulty(i, j)
}

func (o intOracle) Label(i int) string { return o.d.Items[i] }
