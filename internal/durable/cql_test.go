package durable

import (
	"os"
	"path/filepath"
	"testing"
)

// Journals a representative CQL lifecycle on s: session "etl" with one
// prepared statement and one running query, a gracefully closed session
// "done", and an open crowd question on task 7 at seen=1 of k=3.
func journalCQLFixture(t *testing.T, s *Store) {
	t.Helper()
	for _, err := range []error{
		s.CQLSessionCreated("etl"),
		s.CQLPrepared("etl", "top", "SELECT name FROM restaurants"),
		s.CQLQueryStarted("etl", "q1", "CROWDFILL cuisine FROM restaurants"),
		s.CQLQueryStarted("etl", "q2", "SELECT 1"),
		s.CQLQueryFinished("etl", "q2", "done"),
		s.CQLSessionCreated("done"),
		s.CQLSessionClosed("done"),
		s.CQLQuestionPublished(7, 3),
		s.CQLQuestionRefunded(7, 1),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// assertCQLFixture checks that the replica recovered from journalCQLFixture
// came back intact: one open session with its prepared source and only the
// still-running query, the closed session gone, and the question holding a
// 3−1 reservation remainder.
func assertCQLFixture(t *testing.T, s *Store) {
	t.Helper()
	sessions, questions := s.CQLState()
	if len(sessions) != 1 || sessions[0].Name != "etl" {
		t.Fatalf("recovered sessions %+v, want exactly [etl]", sessions)
	}
	sess := sessions[0]
	if src := sess.Prepared["top"]; src != "SELECT name FROM restaurants" {
		t.Fatalf("prepared source %q did not survive", src)
	}
	if len(sess.Running) != 1 || sess.Running["q1"] != "CROWDFILL cuisine FROM restaurants" {
		t.Fatalf("running queries %+v, want only q1 with its source", sess.Running)
	}
	if len(questions) != 1 || questions[0].Task != 7 ||
		questions[0].Reserved != 3 || questions[0].Refunded != 1 {
		t.Fatalf("recovered questions %+v, want task 7 at reserved 3 refunded 1", questions)
	}
	if _, spent, _ := s.State(); spent != 2 {
		t.Fatalf("recovered spend %v, want 2 (k=3 reserved, 1 refunded)", spent)
	}
}

func TestCQLStateSurvivesCrashReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	journalCQLFixture(t, s)
	s.Crash()

	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	if info.CQLSessions != 1 || info.CQLRunningQueries != 1 || info.CQLOpenQuestions != 1 {
		t.Fatalf("recovery info %+v, want 1 session / 1 running query / 1 open question", info)
	}
	assertCQLFixture(t, s2)
}

func TestCQLStateSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	journalCQLFixture(t, s)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Crash()

	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	if !info.SnapshotLoaded || info.Replayed != 0 {
		t.Fatalf("recovery after snapshot: %+v, want snapshot load with no replay", info)
	}
	if info.CQLSessions != 1 || info.CQLRunningQueries != 1 || info.CQLOpenQuestions != 1 {
		t.Fatalf("recovery info %+v, want CQL counts restored from snapshot", info)
	}
	assertCQLFixture(t, s2)
}

func TestCQLTornTailDropsOnlyTornEvents(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	journalCQLFixture(t, s)

	// Everything after this point is the tail we tear off: a second
	// session with its own prepared statement.
	walPath := filepath.Join(dir, walName)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	keep := fi.Size()
	if err := s.CQLSessionCreated("late"); err != nil {
		t.Fatal(err)
	}
	if err := s.CQLPrepared("late", "p", "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	s.Crash()

	// Cut mid-record: leave a few bytes of the "late" events dangling so
	// recovery sees a torn frame, not a clean end of log.
	if err := os.Truncate(walPath, keep+5); err != nil {
		t.Fatal(err)
	}

	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	if info.TornBytes != 5 {
		t.Fatalf("recovery reported %d torn bytes, want 5", info.TornBytes)
	}
	sessions, _ := s2.CQLState()
	for _, sess := range sessions {
		if sess.Name == "late" {
			t.Fatal("session from the torn tail was resurrected")
		}
	}
	// Everything before the tear is unaffected.
	assertCQLFixture(t, s2)
	if info.CQLSessions != 1 || info.CQLOpenQuestions != 1 {
		t.Fatalf("recovery info %+v, want pre-tear CQL state only", info)
	}
}
