package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// snapName is the snapshot file inside the data directory. There is only
// ever one: writeSnapshot replaces it atomically (temp file + fsync +
// rename + directory fsync), so at every instant the directory holds
// either the previous complete snapshot or the new complete snapshot,
// never a partial one.
const snapName = "pool.snap"

// Snapshot is the durable image of the replicated state as of LastSeq.
// Recovery loads it and replays only WAL events with Seq > LastSeq, which
// makes a crash between snapshot publication and WAL truncation harmless
// (the overlapping records are skipped, not double-applied).
type Snapshot struct {
	Format      int                         `json:"format"`
	LastSeq     uint64                      `json:"last_seq"`
	Tasks       []TaskRecord                `json:"tasks"`
	Closed      []core.TaskID               `json:"closed,omitempty"`
	Answers     []AnswerRecord              `json:"answers,omitempty"`
	Leases      []LeaseRecord               `json:"leases,omitempty"`
	BudgetSpent float64                     `json:"budget_spent"`
	Screen      map[string]core.ScreenTally `json:"screen,omitempty"`
}

// snapshotFormat is the current layout version; Open rejects snapshots
// from a future format instead of misreading them.
const snapshotFormat = 1

// buildSnapshot serializes the replica state. Answers keep task insertion
// order then arrival order, so a pool rebuilt from the snapshot iterates
// identically to the original.
func buildSnapshot(p *core.Pool, spent float64, screen map[string]core.ScreenTally, lastSeq uint64) *Snapshot {
	s := &Snapshot{
		Format:      snapshotFormat,
		LastSeq:     lastSeq,
		BudgetSpent: spent,
	}
	for _, id := range p.TaskIDs() {
		s.Tasks = append(s.Tasks, *taskRecord(p.Task(id)))
		if p.Closed(id) {
			s.Closed = append(s.Closed, id)
		}
	}
	for _, a := range p.AllAnswers() {
		s.Answers = append(s.Answers, *answerRecord(a))
	}
	for _, l := range p.Leases() {
		s.Leases = append(s.Leases, *leaseRecord(l))
	}
	if len(screen) > 0 {
		s.Screen = make(map[string]core.ScreenTally, len(screen))
		for w, t := range screen {
			s.Screen[w] = t
		}
	}
	return s
}

// restore rebuilds the replica state from the snapshot. Closed tasks are
// closed only after their answers are recorded, matching the original
// event order well enough for replay (answers for closed tasks were
// recorded before the close).
func (s *Snapshot) restore() (*core.Pool, float64, map[string]core.ScreenTally, error) {
	p := core.NewPool()
	for i := range s.Tasks {
		t := s.Tasks[i].task()
		if _, err := p.Add(t); err != nil {
			return nil, 0, nil, fmt.Errorf("durable: snapshot task %d: %w", t.ID, err)
		}
	}
	for i := range s.Answers {
		if err := p.Record(s.Answers[i].answer()); err != nil {
			return nil, 0, nil, fmt.Errorf("durable: snapshot answer: %w", err)
		}
	}
	for i := range s.Leases {
		l := &s.Leases[i]
		if err := p.Lease(l.Task, l.Worker, l.deadline()); err != nil {
			return nil, 0, nil, fmt.Errorf("durable: snapshot lease: %w", err)
		}
	}
	for _, id := range s.Closed {
		p.Close(id)
	}
	screen := make(map[string]core.ScreenTally, len(s.Screen))
	for w, t := range s.Screen {
		screen[w] = t
	}
	return p, s.BudgetSpent, screen, nil
}

// writeSnapshot atomically replaces dir/pool.snap.
func writeSnapshot(dir string, s *Snapshot) error {
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("durable: encoding snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, snapName+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("durable: writing snapshot: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("durable: syncing snapshot: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("durable: closing snapshot: %w", err))
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapName)); err != nil {
		return cleanup(fmt.Errorf("durable: publishing snapshot: %w", err))
	}
	// Sync the directory so the rename itself survives a power loss.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// loadSnapshot reads dir/pool.snap; a missing file means no snapshot has
// been published yet (nil, nil).
func loadSnapshot(dir string) (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: reading snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("durable: snapshot corrupt: %w", err)
	}
	if s.Format > snapshotFormat {
		return nil, fmt.Errorf("durable: snapshot format %d is newer than this binary supports (%d)", s.Format, snapshotFormat)
	}
	return &s, nil
}
