package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
)

// snapName is the snapshot file inside the data directory. There is only
// ever one: writeSnapshot replaces it atomically (temp file + fsync +
// rename + directory fsync), so at every instant the directory holds
// either the previous complete snapshot or the new complete snapshot,
// never a partial one.
const snapName = "pool.snap"

// Snapshot is the durable image of the replicated state as of LastSeq.
// Recovery loads it and replays only WAL events with Seq > LastSeq, which
// makes a crash between snapshot publication and WAL truncation harmless
// (the overlapping records are skipped, not double-applied).
type Snapshot struct {
	Format      int                         `json:"format"`
	LastSeq     uint64                      `json:"last_seq"`
	Tasks       []TaskRecord                `json:"tasks"`
	Closed      []core.TaskID               `json:"closed,omitempty"`
	Answers     []AnswerRecord              `json:"answers,omitempty"`
	Leases      []LeaseRecord               `json:"leases,omitempty"`
	BudgetSpent float64                     `json:"budget_spent"`
	Screen      map[string]core.ScreenTally `json:"screen,omitempty"`
	// CQL captures the query service's open sessions and in-flight crowd
	// questions (omitted when the service journaled nothing, so snapshots
	// from deployments without CrowdQL are byte-identical to format 1).
	CQL *CQLSnapshot `json:"cql,omitempty"`
}

// CQLSnapshot is the snapshot image of the CrowdQL replica.
type CQLSnapshot struct {
	Sessions  []CQLSessionSnap  `json:"sessions,omitempty"`
	Questions []CQLQuestionSnap `json:"questions,omitempty"`
}

// CQLSessionSnap is one open session: prepared statements by name and the
// queries still running as of the snapshot.
type CQLSessionSnap struct {
	Name     string            `json:"name"`
	Prepared map[string]string `json:"prepared,omitempty"`
	Running  map[string]string `json:"running,omitempty"`
}

// CQLQuestionSnap is one open crowd question's reservation ledger.
type CQLQuestionSnap struct {
	Task     core.TaskID `json:"task"`
	Reserved float64     `json:"reserved"`
	Refunded float64     `json:"refunded,omitempty"`
}

// snapshotFormat is the current layout version; Open rejects snapshots
// from a future format instead of misreading them.
const snapshotFormat = 1

// buildSnapshot serializes the replica state. Answers keep task insertion
// order then arrival order, so a pool rebuilt from the snapshot iterates
// identically to the original.
func buildSnapshot(p *core.Pool, spent float64, screen map[string]core.ScreenTally, lastSeq uint64, cql *cqlReplica) *Snapshot {
	s := &Snapshot{
		Format:      snapshotFormat,
		LastSeq:     lastSeq,
		BudgetSpent: spent,
	}
	for _, id := range p.TaskIDs() {
		s.Tasks = append(s.Tasks, *taskRecord(p.Task(id)))
		if p.Closed(id) {
			s.Closed = append(s.Closed, id)
		}
	}
	for _, a := range p.AllAnswers() {
		s.Answers = append(s.Answers, *answerRecord(a))
	}
	for _, l := range p.Leases() {
		s.Leases = append(s.Leases, *leaseRecord(l))
	}
	if len(screen) > 0 {
		s.Screen = make(map[string]core.ScreenTally, len(screen))
		for w, t := range screen {
			s.Screen[w] = t
		}
	}
	if cql != nil && (len(cql.sessions) > 0 || len(cql.questions) > 0) {
		cs := &CQLSnapshot{}
		for _, sess := range cql.sessions {
			snap := CQLSessionSnap{Name: sess.Name}
			if len(sess.Prepared) > 0 {
				snap.Prepared = make(map[string]string, len(sess.Prepared))
				for k, v := range sess.Prepared {
					snap.Prepared[k] = v
				}
			}
			if len(sess.Running) > 0 {
				snap.Running = make(map[string]string, len(sess.Running))
				for k, v := range sess.Running {
					snap.Running[k] = v
				}
			}
			cs.Sessions = append(cs.Sessions, snap)
		}
		sort.Slice(cs.Sessions, func(i, j int) bool { return cs.Sessions[i].Name < cs.Sessions[j].Name })
		for _, q := range cql.questions {
			cs.Questions = append(cs.Questions, CQLQuestionSnap{
				Task: q.Task, Reserved: q.Reserved, Refunded: q.Refunded,
			})
		}
		sort.Slice(cs.Questions, func(i, j int) bool { return cs.Questions[i].Task < cs.Questions[j].Task })
		s.CQL = cs
	}
	return s
}

// restoreCQL rebuilds the CrowdQL replica from the snapshot's CQL section
// (an empty replica when the section is absent).
func (s *Snapshot) restoreCQL() cqlReplica {
	var r cqlReplica
	if s.CQL == nil {
		return r
	}
	for i := range s.CQL.Sessions {
		snap := &s.CQL.Sessions[i]
		st := r.session(snap.Name)
		for k, v := range snap.Prepared {
			st.Prepared[k] = v
		}
		for k, v := range snap.Running {
			st.Running[k] = v
		}
	}
	for i := range s.CQL.Questions {
		q := s.CQL.Questions[i]
		if r.questions == nil {
			r.questions = make(map[core.TaskID]*CQLQuestionState)
		}
		r.questions[q.Task] = &CQLQuestionState{Task: q.Task, Reserved: q.Reserved, Refunded: q.Refunded}
	}
	return r
}

// restore rebuilds the replica state from the snapshot. Closed tasks are
// closed only after their answers are recorded, matching the original
// event order well enough for replay (answers for closed tasks were
// recorded before the close).
func (s *Snapshot) restore() (*core.Pool, float64, map[string]core.ScreenTally, error) {
	p := core.NewPool()
	for i := range s.Tasks {
		t := s.Tasks[i].task()
		if _, err := p.Add(t); err != nil {
			return nil, 0, nil, fmt.Errorf("durable: snapshot task %d: %w", t.ID, err)
		}
	}
	for i := range s.Answers {
		if err := p.Record(s.Answers[i].answer()); err != nil {
			return nil, 0, nil, fmt.Errorf("durable: snapshot answer: %w", err)
		}
	}
	for i := range s.Leases {
		l := &s.Leases[i]
		if err := p.Lease(l.Task, l.Worker, l.deadline()); err != nil {
			return nil, 0, nil, fmt.Errorf("durable: snapshot lease: %w", err)
		}
	}
	for _, id := range s.Closed {
		p.Close(id)
	}
	screen := make(map[string]core.ScreenTally, len(s.Screen))
	for w, t := range s.Screen {
		screen[w] = t
	}
	return p, s.BudgetSpent, screen, nil
}

// writeSnapshot atomically replaces dir/pool.snap.
func writeSnapshot(dir string, s *Snapshot) error {
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("durable: encoding snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, snapName+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("durable: writing snapshot: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("durable: syncing snapshot: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("durable: closing snapshot: %w", err))
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapName)); err != nil {
		return cleanup(fmt.Errorf("durable: publishing snapshot: %w", err))
	}
	// Sync the directory so the rename itself survives a power loss.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// loadSnapshot reads dir/pool.snap; a missing file means no snapshot has
// been published yet (nil, nil).
func loadSnapshot(dir string) (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: reading snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("durable: snapshot corrupt: %w", err)
	}
	if s.Format > snapshotFormat {
		return nil, fmt.Errorf("durable: snapshot format %d is newer than this binary supports (%d)", s.Format, snapshotFormat)
	}
	return &s, nil
}
