package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func choiceTask(id core.TaskID, golden bool, truth int) *core.Task {
	return &core.Task{
		ID:          id,
		Kind:        core.SingleChoice,
		Question:    fmt.Sprintf("q%d", id),
		Options:     []string{"a", "b", "c"},
		Golden:      golden,
		GroundTruth: truth,
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *RecoveryInfo) {
	t.Helper()
	s, info, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, info
}

func TestParseFsync(t *testing.T) {
	cases := []struct {
		in     string
		policy FsyncPolicy
		every  time.Duration
		ok     bool
	}{
		{"", FsyncAlways, 0, true},
		{"always", FsyncAlways, 0, true},
		{"off", FsyncNever, 0, true},
		{"none", FsyncNever, 0, true},
		{"never", FsyncNever, 0, true},
		{"100ms", FsyncInterval, 100 * time.Millisecond, true},
		{"2s", FsyncInterval, 2 * time.Second, true},
		{"-5ms", 0, 0, false},
		{"0", 0, 0, false},
		{"sometimes", 0, 0, false},
	}
	for _, c := range cases {
		p, d, err := ParseFsync(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseFsync(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && (p != c.policy || d != c.every) {
			t.Errorf("ParseFsync(%q) = (%v, %v), want (%v, %v)", c.in, p, d, c.policy, c.every)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf(`{"rec":%d,"pad":%q}`, i, string(make([]byte, i*7))))
		want = append(want, p)
		if err := w.append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.close(false); err != nil {
		t.Fatal(err)
	}
	got, _, torn, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("clean log reported %d torn bytes", torn)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWALMissingFileIsEmpty(t *testing.T) {
	got, valid, torn, err := readWAL(filepath.Join(t.TempDir(), walName))
	if err != nil || len(got) != 0 || valid != 0 || torn != 0 {
		t.Fatalf("missing WAL = (%d records, %d valid, %d torn, %v), want empty", len(got), valid, torn, err)
	}
}

func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.append([]byte(fmt.Sprintf(`{"rec":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(false); err != nil {
		t.Fatal(err)
	}

	// A crash mid-append: a full header promising 64 bytes, then only 5.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, frameHeader+5)
	binary.LittleEndian.PutUint32(frame[0:4], 64)
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, valid, torn, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d records past torn tail, want 3", len(got))
	}
	if torn != int64(len(frame)) {
		t.Fatalf("torn = %d bytes, want %d", torn, len(frame))
	}
	fi, _ := os.Stat(path)
	if valid+torn != fi.Size() {
		t.Fatalf("valid %d + torn %d != file size %d", valid, torn, fi.Size())
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.append([]byte(fmt.Sprintf(`{"rec":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(false); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of the middle record: everything from there on
	// is untrusted.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec0 := frameHeader + len(`{"rec":0}`)
	data[rec0+frameHeader+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, valid, torn, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d records before corruption, want 1", len(got))
	}
	if valid != int64(rec0) || torn != int64(len(data)-rec0) {
		t.Fatalf("valid=%d torn=%d, want %d and %d", valid, torn, rec0, len(data)-rec0)
	}
}

func TestStoreRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	if !info.Empty() {
		t.Fatalf("fresh dir reported recovered state: %+v", info)
	}

	yes, no := true, false
	s.TaskAdded(choiceTask(0, false, 1))
	s.TaskAdded(choiceTask(1, true, 2))
	if err := s.AnswerDurable(core.Answer{Task: 0, Worker: "w1", Option: 1}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AnswerDurable(core.Answer{Task: 1, Worker: "w1", Option: 2}, 1, &yes); err != nil {
		t.Fatal(err)
	}
	if err := s.AnswerDurable(core.Answer{Task: 1, Worker: "w2", Option: 0}, 1, &no); err != nil {
		t.Fatal(err)
	}
	s.LeaseIssued(core.Lease{Task: 0, Worker: "w3", Deadline: time.Unix(100, 0)})
	s.TaskClosed(1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	// Close snapshots, so the reopen should come entirely from pool.snap.
	if !info.SnapshotLoaded || info.Replayed != 0 {
		t.Fatalf("reopen after clean Close: %+v, want snapshot only", info)
	}
	pool, spent, screen := s2.State()
	if pool.Len() != 2 {
		t.Fatalf("recovered %d tasks, want 2", pool.Len())
	}
	if n := pool.TotalAnswers(); n != 3 {
		t.Fatalf("recovered %d answers, want 3", n)
	}
	if spent != 3 {
		t.Fatalf("recovered spent = %v, want 3", spent)
	}
	if !pool.Closed(1) || pool.Closed(0) {
		t.Fatalf("closed flags wrong: task0=%v task1=%v", pool.Closed(0), pool.Closed(1))
	}
	if !pool.HasLease("w3", 0) {
		t.Fatal("lease w3/task0 not recovered")
	}
	if got := screen["w1"]; got != (core.ScreenTally{Correct: 1, Total: 1}) {
		t.Fatalf("screen[w1] = %+v", got)
	}
	if got := screen["w2"]; got != (core.ScreenTally{Correct: 0, Total: 1}) {
		t.Fatalf("screen[w2] = %+v", got)
	}
	if t0 := pool.Task(0); t0 == nil || t0.GroundTruth != 1 || t0.Question != "q0" {
		t.Fatalf("task 0 fields not recovered: %+v", t0)
	}
}

func TestStoreCrashKeepsAcknowledgedAnswers(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	s.TaskAdded(choiceTask(0, false, -1))
	for i := 0; i < 5; i++ {
		a := core.Answer{Task: 0, Worker: fmt.Sprintf("w%d", i), Option: i % 3}
		if err := s.AnswerDurable(a, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	if err := s.AnswerDurable(core.Answer{Task: 0, Worker: "late", Option: 0}, 1, nil); err == nil {
		t.Fatal("append after Crash succeeded; the store must go sticky-failed")
	}

	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	if info.SnapshotLoaded || info.Replayed != 6 {
		t.Fatalf("crash recovery: %+v, want 6 replayed records and no snapshot", info)
	}
	pool, spent, _ := s2.State()
	if n := pool.TotalAnswers(); n != 5 || spent != 5 {
		t.Fatalf("recovered %d answers, spent %v; want 5 and 5", n, spent)
	}
}

func TestSnapshotCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	s.TaskAdded(choiceTask(0, false, -1))
	if err := s.AnswerDurable(core.Answer{Task: 0, Worker: "w", Option: 0}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("WAL is %d bytes after snapshot, want 0", fi.Size())
	}
	// Idempotent when nothing new was journaled.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Records appended after the snapshot land in the (truncated) log and
	// replay on top of it.
	if err := s.AnswerDurable(core.Answer{Task: 0, Worker: "w2", Option: 1}, 1, nil); err != nil {
		t.Fatal(err)
	}
	s.Crash()

	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	if !info.SnapshotLoaded || info.Replayed != 1 || info.Skipped != 0 {
		t.Fatalf("recovery after snapshot+append: %+v", info)
	}
	pool, spent, _ := s2.State()
	if n := pool.TotalAnswers(); n != 2 || spent != 2 {
		t.Fatalf("recovered %d answers, spent %v; want 2 and 2", n, spent)
	}
}

func TestRecoverySkipsRecordsCoveredBySnapshot(t *testing.T) {
	// Simulate a crash in the window after the snapshot was published but
	// before the WAL was truncated: every journaled record is both in the
	// snapshot and in the log, and replay must not double-apply it.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	s.TaskAdded(choiceTask(0, false, -1))
	for i := 0; i < 4; i++ {
		a := core.Answer{Task: 0, Worker: fmt.Sprintf("w%d", i), Option: 0}
		if err := s.AnswerDurable(a, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeSnapshot(dir, s.currentSnapshot()); err != nil {
		t.Fatal(err)
	}
	s.Crash() // WAL still holds all 5 records

	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	if !info.SnapshotLoaded || info.Skipped != 5 || info.Replayed != 0 {
		t.Fatalf("overlap recovery: %+v, want 5 skipped", info)
	}
	pool, spent, _ := s2.State()
	if n := pool.TotalAnswers(); n != 4 || spent != 4 {
		t.Fatalf("answers doubled or lost: %d answers, spent %v; want 4 and 4", n, spent)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	s.TaskAdded(choiceTask(0, false, -1))
	if err := s.AnswerDurable(core.Answer{Task: 0, Worker: "w", Option: 0}, 1, nil); err != nil {
		t.Fatal(err)
	}
	s.Crash()

	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fi, _ := os.Stat(walPath)
	dirtySize := fi.Size()

	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	if info.TornBytes != 3 || info.Replayed != 2 {
		t.Fatalf("torn recovery: %+v, want 3 torn bytes and 2 replayed", info)
	}
	fi, _ = os.Stat(walPath)
	if fi.Size() != dirtySize-3 {
		t.Fatalf("WAL is %d bytes after open, want %d (tail truncated)", fi.Size(), dirtySize-3)
	}
	// The log must still be appendable and replayable after the cut.
	if err := s2.AnswerDurable(core.Answer{Task: 0, Worker: "w2", Option: 1}, 1, nil); err != nil {
		t.Fatal(err)
	}
	s2.Crash()
	s3, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s3.Close()
	if info.TornBytes != 0 || info.Replayed != 3 {
		t.Fatalf("post-truncation recovery: %+v, want clean log with 3 records", info)
	}
}

func TestBudgetEventsAdjustSpend(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	if err := s.BudgetCharged(10); err != nil {
		t.Fatal(err)
	}
	if err := s.BudgetRefunded(4); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	s2, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	if _, spent, _ := s2.State(); spent != 6 {
		t.Fatalf("recovered spend %v, want 6", spent)
	}
}

func TestConcurrentAppendsAllSurvive(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	// Collection tasks accept repeated answers from the same worker (up to
	// the resubmission cap), so every goroutine can hammer the same task.
	s.TaskAdded(&core.Task{ID: 0, Kind: core.Collection, Question: "enumerate"})
	const workers, each = 8, core.MaxRepeatAnswers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				a := core.Answer{Task: 0, Worker: fmt.Sprintf("w%d", w), Text: fmt.Sprintf("item-%d-%d", w, i)}
				if err := s.AnswerDurable(a, 1, nil); err != nil {
					t.Errorf("worker %d append %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Crash()

	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	if info.Replayed != workers*each+1 {
		t.Fatalf("replayed %d records, want %d", info.Replayed, workers*each+1)
	}
	pool, spent, _ := s2.State()
	if n := pool.TotalAnswers(); n != workers*each || spent != workers*each {
		t.Fatalf("recovered %d answers, spent %v; want %d", n, spent, workers*each)
	}
}

func TestStoreImplementsJournalThroughConcurrentPool(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	var _ core.Journal = s

	cp := core.NewConcurrentPool(nil)
	cp.SetJournal(s)
	id0, err := cp.Add(choiceTask(0, false, -1))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := cp.Add(choiceTask(1, false, -1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Unix(50, 0)
	if _, ok := cp.AssignLease(core.AssignerFunc(func(p *core.Pool, w string) (core.TaskID, bool) {
		return id0, true
	}), "w1", deadline); !ok {
		t.Fatal("AssignLease failed")
	}
	if exp := cp.ExpireLeases(time.Unix(60, 0)); len(exp) != 1 {
		t.Fatalf("expired %d leases, want 1", len(exp))
	}
	cp.Close(id1)
	s.Crash()

	s2, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	pool, _, _ := s2.State()
	if pool.Len() != 2 {
		t.Fatalf("recovered %d tasks, want 2", pool.Len())
	}
	if pool.HasLease("w1", id0) {
		t.Fatal("expired lease resurrected by replay")
	}
	if !pool.Closed(id1) {
		t.Fatal("close not replayed")
	}
}

func TestWorkerEliminationMarkerAndTallies(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	s.TaskAdded(choiceTask(0, true, 1))
	no := false
	for i := 0; i < 3; i++ {
		if err := s.AnswerDurable(core.Answer{Task: 0, Worker: fmt.Sprintf("w%d", i), Option: 0}, 1, &no); err != nil {
			t.Fatal(err)
		}
	}
	s.WorkerEliminated("w0")
	s.Crash()

	s2, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	_, _, screen := s2.State()
	for i := 0; i < 3; i++ {
		w := fmt.Sprintf("w%d", i)
		if screen[w] != (core.ScreenTally{Correct: 0, Total: 1}) {
			t.Fatalf("screen[%s] = %+v, want one miss", w, screen[w])
		}
	}
	// Feed the tallies into a screen and confirm the elimination re-derives.
	ws := core.NewWorkerScreen(1, 0.5)
	ws.Restore(screen)
	if !ws.Eliminated("w0") {
		t.Fatal("restored tallies did not re-derive the elimination")
	}
}

func TestFsyncIntervalFlusherAndGracefulClose(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncInterval, FsyncEvery: 5 * time.Millisecond, SnapshotEvery: 5 * time.Millisecond})
	s.TaskAdded(choiceTask(0, false, -1))
	for i := 0; i < 20; i++ {
		a := core.Answer{Task: 0, Worker: fmt.Sprintf("w%d", i), Option: 0}
		if err := s.AnswerDurable(a, 1, nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer s2.Close()
	pool, spent, _ := s2.State()
	if n := pool.TotalAnswers(); n != 20 || spent != 20 {
		t.Fatalf("recovered %d answers, spent %v; want 20", n, spent)
	}
}
