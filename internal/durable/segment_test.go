package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// driveScript journals a fixed mutation script: 16 tasks spread across
// segments, answers (golden and plain), leases, expiries, a close, and
// budget adjustments. Any two stores that replay it must converge.
func driveScript(t *testing.T, s *Store) {
	t.Helper()
	for i := 0; i < 16; i++ {
		s.TaskAdded(choiceTask(core.TaskID(i+1), i%4 == 0, i%3))
	}
	yes, no := true, false
	for i := 0; i < 16; i++ {
		id := core.TaskID(i + 1)
		var g *bool
		if i%4 == 0 {
			if i%8 == 0 {
				g = &yes
			} else {
				g = &no
			}
		}
		a := core.Answer{Task: id, Worker: fmt.Sprintf("w%d", i%5), Option: i % 3}
		if err := s.AnswerDurable(a, 1, g); err != nil {
			t.Fatal(err)
		}
	}
	s.LeaseIssued(core.Lease{Task: 2, Worker: "lw", Deadline: time.Unix(100, 0)})
	s.LeaseIssued(core.Lease{Task: 3, Worker: "lw", Deadline: time.Unix(100, 0)})
	s.LeasesExpired([]core.Lease{{Task: 3, Worker: "lw", Deadline: time.Unix(100, 0)}})
	s.TaskClosed(5)
	if err := s.BudgetCharged(3); err != nil {
		t.Fatal(err)
	}
	if err := s.BudgetRefunded(1); err != nil {
		t.Fatal(err)
	}
	s.WorkerEliminated("w0")
}

// statesEquivalent compares two recovered states task by task,
// order-insensitively (a 1-segment store presents insertion order, a
// multi-segment store ascending IDs).
func statesEquivalent(t *testing.T, label string, wp, gp *core.Pool, ws, gs float64, wscr, gscr map[string]core.ScreenTally) {
	t.Helper()
	if wp.Len() != gp.Len() || wp.TotalAnswers() != gp.TotalAnswers() {
		t.Fatalf("%s: shape diverges: %d/%d tasks, %d/%d answers",
			label, gp.Len(), wp.Len(), gp.TotalAnswers(), wp.TotalAnswers())
	}
	for _, id := range wp.TaskIDs() {
		if gp.Task(id) == nil {
			t.Fatalf("%s: task %d missing", label, id)
		}
		if !reflect.DeepEqual(wp.Answers(id), gp.Answers(id)) {
			t.Fatalf("%s: task %d answers diverge:\n got %v\nwant %v", label, id, gp.Answers(id), wp.Answers(id))
		}
		if wp.Closed(id) != gp.Closed(id) {
			t.Fatalf("%s: task %d closed flag diverges", label, id)
		}
		if wp.LeaseCount(id) != gp.LeaseCount(id) {
			t.Fatalf("%s: task %d lease count diverges", label, id)
		}
	}
	if ws != gs {
		t.Fatalf("%s: spent %v, want %v", label, gs, ws)
	}
	if !reflect.DeepEqual(wscr, gscr) {
		t.Fatalf("%s: screen diverges: got %v, want %v", label, gscr, wscr)
	}
}

// TestSegmentedRecoveryMatchesSingleWAL is the core segmented-durability
// contract: N segment files replay to exactly the state one WAL produced.
func TestSegmentedRecoveryMatchesSingleWAL(t *testing.T) {
	refDir, segDir := t.TempDir(), t.TempDir()
	ref, _ := mustOpen(t, refDir, Options{Fsync: FsyncNever, Segments: 1})
	driveScript(t, ref)
	ref.Crash()

	seg, _ := mustOpen(t, segDir, Options{Fsync: FsyncNever, Segments: 4})
	driveScript(t, seg)
	// The events must actually be spread over several files.
	nonEmpty := 0
	for i := 0; i < 4; i++ {
		if fi, err := os.Stat(filepath.Join(segDir, segWALName(i))); err == nil && fi.Size() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("only %d non-empty WAL segments; the script should spread across several", nonEmpty)
	}
	seg.Crash()

	ref2, _ := mustOpen(t, refDir, Options{Fsync: FsyncNever, Segments: 1})
	defer ref2.Close()
	seg2, info := mustOpen(t, segDir, Options{Fsync: FsyncNever, Segments: 4})
	defer seg2.Close()
	if info.Segments != 4 {
		t.Fatalf("recovery reports %d segments, want 4", info.Segments)
	}
	wp, ws, wscr := ref2.State()
	gp, gs, gscr := seg2.State()
	statesEquivalent(t, "segmented vs single", wp, gp, ws, gs, wscr, gscr)
}

// TestReshardRecovery reopens a 4-segment directory with 2 segments and
// then with 1: events re-route to their new owners, stale files are
// compacted into a snapshot and removed, and the state never changes.
func TestReshardRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: 4})
	driveScript(t, s)
	s.Crash()

	s4, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: 4})
	wp, ws, wscr := s4.State()
	s4.Crash()

	s2, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: 2})
	gp, gs, gscr := s2.State()
	statesEquivalent(t, "4->2 reshard", wp, gp, ws, gs, wscr, gscr)
	// The segments of the old layout must be gone (their events live in
	// the forced snapshot now).
	for i := 2; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, segWALName(i))); !os.IsNotExist(err) {
			t.Fatalf("stale segment %s survived the reshard", segWALName(i))
		}
	}
	// New appends post-reshard land in the new layout and survive.
	if err := s2.AnswerDurable(core.Answer{Task: 7, Worker: "post", Option: 0}, 1, nil); err != nil {
		t.Fatal(err)
	}
	s2.Crash()

	s1, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: 1})
	defer s1.Close()
	gp2, gs2, _ := s1.State()
	if gp2.TotalAnswers() != wp.TotalAnswers()+1 {
		t.Fatalf("2->1 reshard: %d answers, want %d", gp2.TotalAnswers(), wp.TotalAnswers()+1)
	}
	if gs2 != ws+1 {
		t.Fatalf("2->1 reshard: spent %v, want %v", gs2, ws+1)
	}
}

// TestSegmentedTornTailIsolated verifies a torn tail on one segment does
// not lose the other segments' records.
func TestSegmentedTornTailIsolated(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: 4})
	driveScript(t, s)
	s.Crash()

	// Find a non-empty segment file and tear its tail.
	var torn string
	for i := 0; i < 4; i++ {
		p := filepath.Join(dir, segWALName(i))
		if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
			torn = p
			break
		}
	}
	if torn == "" {
		t.Fatal("no non-empty segment to tear")
	}
	f, err := os.OpenFile(torn, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: 4})
	defer s2.Close()
	if info.TornBytes != 5 {
		t.Fatalf("torn bytes = %d, want 5", info.TornBytes)
	}
	pool, _, _ := s2.State()
	if pool.Len() != 16 || pool.TotalAnswers() != 16 {
		t.Fatalf("torn-tail recovery lost records: %d tasks, %d answers", pool.Len(), pool.TotalAnswers())
	}
}

// TestSegmentedSnapshotCompactsAllSegments checks Snapshot truncates
// every segment file and recovery then comes from the snapshot alone.
func TestSegmentedSnapshotCompactsAllSegments(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: 4})
	driveScript(t, s)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if fi, err := os.Stat(filepath.Join(dir, segWALName(i))); err != nil || fi.Size() != 0 {
			t.Fatalf("segment %d not truncated after snapshot", i)
		}
	}
	s.Crash()
	s2, info := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: 4})
	defer s2.Close()
	if !info.SnapshotLoaded || info.Replayed != 0 {
		t.Fatalf("recovery after snapshot: %+v, want snapshot only", info)
	}
	pool, _, _ := s2.State()
	if pool.Len() != 16 || pool.TotalAnswers() != 16 {
		t.Fatalf("snapshot recovery lost state: %d tasks, %d answers", pool.Len(), pool.TotalAnswers())
	}
}

// TestAnswerBatchDurable journals one batch spanning several segments and
// verifies every answer, the total cost, and the golden tallies recover.
func TestAnswerBatchDurable(t *testing.T) {
	for _, segments := range []int{1, 4} {
		dir := t.TempDir()
		s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: segments})
		for i := 0; i < 8; i++ {
			s.TaskAdded(choiceTask(core.TaskID(i+1), i == 0, 0))
		}
		yes := true
		as := make([]core.Answer, 8)
		costs := make([]float64, 8)
		goldens := make([]*bool, 8)
		for i := range as {
			as[i] = core.Answer{Task: core.TaskID(i + 1), Worker: "batcher", Option: 0}
			costs[i] = 1
		}
		goldens[0] = &yes
		if err := s.AnswerBatchDurable(as, costs, goldens); err != nil {
			t.Fatal(err)
		}
		s.Crash()

		s2, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: segments})
		pool, spent, screen := s2.State()
		if pool.TotalAnswers() != 8 {
			t.Fatalf("segments=%d: recovered %d batch answers, want 8", segments, pool.TotalAnswers())
		}
		if spent != 8 {
			t.Fatalf("segments=%d: spent %v, want 8", segments, spent)
		}
		if screen["batcher"] != (core.ScreenTally{Correct: 1, Total: 1}) {
			t.Fatalf("segments=%d: screen = %+v", segments, screen["batcher"])
		}
		s2.Close()
	}
}

// TestBatchAfterCrashFails pins the sticky-failure contract for the batch
// path: a crashed store must refuse batch appends.
func TestBatchAfterCrashFails(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: 2})
	s.TaskAdded(choiceTask(1, false, 0))
	s.Crash()
	err := s.AnswerBatchDurable([]core.Answer{{Task: 1, Worker: "w", Option: 0}}, []float64{1}, nil)
	if err == nil {
		t.Fatal("batch append after Crash succeeded; the store must be sticky-failed")
	}
}

// TestSegmentedFsyncAlwaysGroupCommit exercises the FsyncAlways ack path
// against a segmented store under concurrency (the group-commit path),
// then proves everything acked is on disk.
func TestSegmentedFsyncAlwaysGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncAlways, Segments: 4})
	for i := 0; i < 8; i++ {
		s.TaskAdded(choiceTask(core.TaskID(i+1), false, -1))
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 8 && err == nil; i++ {
				a := core.Answer{Task: core.TaskID(i + 1), Worker: fmt.Sprintf("gc%d", w), Option: 0}
				err = s.AnswerDurable(a, 1, nil)
			}
			done <- err
		}(w)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	s2, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, Segments: 4})
	defer s2.Close()
	pool, _, _ := s2.State()
	if pool.TotalAnswers() != 64 {
		t.Fatalf("recovered %d acked answers, want 64", pool.TotalAnswers())
	}
}
