package durable

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkAnswerDurable measures the cost of journaling one accepted
// answer under each fsync policy — the per-ack durability tax the serving
// layer pays on top of the in-memory Record. "off" is the upper bound on
// WAL framing + replica-apply cost; "always" adds an fsync per answer;
// "interval" amortizes the fsyncs onto a background flusher.
func BenchmarkAnswerDurable(b *testing.B) {
	policies := []struct {
		name string
		opts Options
	}{
		{"off", Options{Fsync: FsyncNever}},
		{"interval-100ms", Options{Fsync: FsyncInterval, FsyncEvery: 100 * time.Millisecond}},
		{"always", Options{Fsync: FsyncAlways}},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			s, _, err := Open(b.TempDir(), p.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			s.TaskAdded(&core.Task{ID: 0, Kind: core.Collection, Question: "q"})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := core.Answer{Task: 0, Worker: "w", Text: fmt.Sprintf("item-%d", i)}
				if err := s.AnswerDurable(a, 1, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
