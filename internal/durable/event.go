// Package durable persists the serving pool's state so a crash or
// redeploy of the platform does not throw away answers the requester paid
// the crowd for. It follows the classic log-structured recipe:
//
//   - every committed mutation is appended to a write-ahead log (an
//     append-only file of length-prefixed, CRC32-checksummed JSON events),
//   - the log is periodically compacted into a snapshot (pool.snap,
//     written atomically via temp file + rename, after which the WAL is
//     truncated), and
//   - Open loads the latest snapshot, replays the WAL tail, and truncates
//     at the first torn or corrupt record instead of failing — a crash
//     mid-append loses at most the unacknowledged suffix.
//
// The central invariant is ack-implies-durable: the serving layer journals
// an accepted answer after the pool records it and does not acknowledge
// the client until the append (and, under FsyncAlways, the fsync)
// succeeds. See DESIGN.md § Durability for the full protocol, including
// the fsync policy matrix and recovery semantics.
package durable

import (
	"time"

	"repro/internal/core"
)

// Event types, one per kind of journaled mutation.
const (
	// EvTaskAdded registers a task (carries the full task definition).
	EvTaskAdded = "task_added"
	// EvAnswerRecorded commits one accepted answer together with the
	// budget units it was charged and, for golden tasks, whether the
	// worker got it right. This is the record the ack-implies-durable
	// invariant protects.
	EvAnswerRecorded = "answer_recorded"
	// EvAnswerBatch commits several accepted answers in one record: the
	// batch-ingestion endpoint journals all answers that landed on one WAL
	// segment with a single append (and a single fsync under FsyncAlways),
	// which is the durability half of amortizing per-answer overhead. Cost
	// is the total charged for the batch; Goldens is index-aligned with
	// Answers (nil entries for non-golden tasks).
	EvAnswerBatch = "answer_batch"
	// EvTaskClosed marks a task as no longer accepting answers.
	EvTaskClosed = "task_closed"
	// EvWorkerEliminated is an audit marker written when a golden-task
	// observation tips a worker over the elimination threshold. Replay
	// derives eliminations from the tallies, so the marker carries no
	// state of its own.
	EvWorkerEliminated = "worker_eliminated"
	// EvBudgetCharged / EvBudgetRefunded adjust the durable spend for
	// charges that do not ride an answer record (bulk pricing, manual
	// adjustments). The serving path itself never emits them: an accepted
	// answer's cost travels on its EvAnswerRecorded event, so a charge
	// whose Record fails (and is refunded) never touches the log.
	EvBudgetCharged  = "budget_charged"
	EvBudgetRefunded = "budget_refunded"
	// EvLeaseIssued / EvLeaseExpired track assignment leases so recovery
	// restores in-flight claims. Lease consumption is implicit in
	// EvAnswerRecorded (Record consumes the matching lease), exactly as
	// in the live pool.
	EvLeaseIssued  = "lease_issued"
	EvLeaseExpired = "lease_expired"

	// CrowdQL session-lifecycle events. Session, prepare, and query events
	// have no task affinity and land on segment 0; question events ride the
	// segment of the task they published, ordered with that task's add,
	// answer, and close records. Together they make the query service
	// crash-recoverable: replaying them rebuilds which sessions were open
	// (with their prepared statements), which queries were running, and
	// which crowd questions still held a budget reservation.
	//
	// EvCqlSessionCreated / EvCqlSessionClosed bracket a named session's
	// lifetime. A graceful close journals the closed event, so only
	// sessions that were open at crash time are restored.
	EvCqlSessionCreated = "cql_session_created"
	EvCqlSessionClosed  = "cql_session_closed"
	// EvCqlPrepared stores a prepared statement's name and source text so
	// recovery can re-prepare it (the source re-parses; row data never
	// rides the log — catalogs persist separately, see DESIGN.md).
	EvCqlPrepared = "cql_prepared"
	// EvCqlQueryStarted / EvCqlQueryFinished bracket a query handle's run.
	// A started event without a matching finished event marks a query that
	// was mid-flight at crash time; recovery resurrects its handle with
	// status "recovered" instead of silently vanishing it.
	EvCqlQueryStarted  = "cql_query_started"
	EvCqlQueryFinished = "cql_query_finished"
	// EvCqlQuestionPublished journals the gateway's redundancy-k budget
	// reservation as a crowd question is published (Amount = k, folded into
	// the durable spend). EvCqlQuestionRefund releases part of the
	// reservation as answers arrive (each arriving answer carries its own
	// charge on its answer record). EvCqlQuestionClosed retires the
	// question, refunding the unconsumed remainder. A published event with
	// no closed event is an orphaned question: recovery closes its task and
	// refunds reserved − refunded, so post-recovery spend equals acked
	// answers exactly.
	EvCqlQuestionPublished = "cql_question_published"
	EvCqlQuestionRefund    = "cql_question_refund"
	EvCqlQuestionClosed    = "cql_question_closed"
)

// TaskRecord is the wire form of a core.Task. Payload (operator-specific
// context) is not persisted: the kernel never inspects it and it may not
// be serializable.
type TaskRecord struct {
	ID               core.TaskID `json:"id"`
	Kind             int         `json:"kind"`
	Question         string      `json:"q,omitempty"`
	Options          []string    `json:"opts,omitempty"`
	Difficulty       float64     `json:"diff,omitempty"`
	Golden           bool        `json:"golden,omitempty"`
	GroundTruth      int         `json:"gt"`
	GroundTruthText  string      `json:"gtt,omitempty"`
	GroundTruthScore float64     `json:"gts,omitempty"`
}

func taskRecord(t *core.Task) *TaskRecord {
	return &TaskRecord{
		ID: t.ID, Kind: int(t.Kind), Question: t.Question, Options: t.Options,
		Difficulty: t.Difficulty, Golden: t.Golden,
		GroundTruth: t.GroundTruth, GroundTruthText: t.GroundTruthText,
		GroundTruthScore: t.GroundTruthScore,
	}
}

func (r *TaskRecord) task() *core.Task {
	return &core.Task{
		ID: r.ID, Kind: core.TaskKind(r.Kind), Question: r.Question, Options: r.Options,
		Difficulty: r.Difficulty, Golden: r.Golden,
		GroundTruth: r.GroundTruth, GroundTruthText: r.GroundTruthText,
		GroundTruthScore: r.GroundTruthScore,
	}
}

// AnswerRecord is the wire form of a core.Answer.
type AnswerRecord struct {
	Task      core.TaskID `json:"task"`
	Worker    string      `json:"worker"`
	Option    int         `json:"option"`
	Text      string      `json:"text,omitempty"`
	Score     float64     `json:"score,omitempty"`
	Submitted float64     `json:"sub,omitempty"`
	Latency   float64     `json:"lat,omitempty"`
}

func answerRecord(a core.Answer) *AnswerRecord {
	return &AnswerRecord{
		Task: a.Task, Worker: a.Worker, Option: a.Option,
		Text: a.Text, Score: a.Score, Submitted: a.Submitted, Latency: a.Latency,
	}
}

func (r *AnswerRecord) answer() core.Answer {
	return core.Answer{
		Task: r.Task, Worker: r.Worker, Option: r.Option,
		Text: r.Text, Score: r.Score, Submitted: r.Submitted, Latency: r.Latency,
	}
}

// LeaseRecord is the wire form of a core.Lease; the deadline is absolute
// wall-clock nanoseconds, so leases recovered after downtime longer than
// their TTL are already expired and the first sweep reclaims them.
type LeaseRecord struct {
	Task     core.TaskID `json:"task"`
	Worker   string      `json:"worker"`
	Deadline int64       `json:"deadline"`
}

func leaseRecord(l core.Lease) *LeaseRecord {
	return &LeaseRecord{Task: l.Task, Worker: l.Worker, Deadline: l.Deadline.UnixNano()}
}

func (r *LeaseRecord) deadline() time.Time { return time.Unix(0, r.Deadline) }

// Event is one WAL record. Seq is assigned by the store and strictly
// increases across snapshots and restarts; recovery replays only events
// with Seq greater than the snapshot's LastSeq, which makes a crash
// between snapshot publication and WAL truncation harmless.
type Event struct {
	Seq     uint64         `json:"seq"`
	Type    string         `json:"type"`
	Task    *TaskRecord    `json:"task,omitempty"`
	TaskID  core.TaskID    `json:"task_id,omitempty"`
	Worker  string         `json:"worker,omitempty"`
	Answer  *AnswerRecord  `json:"answer,omitempty"`
	Answers []AnswerRecord `json:"answers,omitempty"`
	Cost    float64        `json:"cost,omitempty"`
	Golden  *bool          `json:"golden,omitempty"`
	Goldens []*bool        `json:"goldens,omitempty"`
	Amount  float64        `json:"amount,omitempty"`
	Lease   *LeaseRecord   `json:"lease,omitempty"`
	Leases  []LeaseRecord  `json:"leases,omitempty"`
	// CrowdQL fields (EvCql* events only): the owning session, the query
	// handle id, a prepared statement or source text, and a terminal query
	// status.
	Session string `json:"session,omitempty"`
	Query   string `json:"query,omitempty"`
	Name    string `json:"name,omitempty"`
	Src     string `json:"src,omitempty"`
	Status  string `json:"status,omitempty"`
}
