// CrowdQL durability: the store journals session-lifecycle and
// crowd-question reservation events alongside the pool WAL and folds them
// into a replica of the query service's state, so recovery can reopen the
// sessions that were live at crash time and reconcile the budget held by
// questions that never closed. See DESIGN.md § CrowdQL durability.
package durable

import (
	"sort"
	"strings"

	"repro/internal/core"
)

// CQLSessionState is the recovered image of one open session: its
// prepared statements (name → source) and the queries that were running
// when the journal ends (query id → source text, "" for prepared runs
// whose source lives under Prepared).
type CQLSessionState struct {
	Name     string
	Prepared map[string]string
	Running  map[string]string
}

// CQLQuestionState is the recovered image of one open crowd question: the
// published task, the redundancy-k reservation charged at publish, and
// how much of it the arriving answers already released. Reserved −
// Refunded is the remainder recovery must hand back.
type CQLQuestionState struct {
	Task     core.TaskID
	Reserved float64
	Refunded float64
}

// cqlReplica is the store's fold of the EvCql* events, guarded by s.mu
// like the other cross-task replica state. Maps are allocated lazily: a
// deployment that never mounts the query service pays nothing.
type cqlReplica struct {
	sessions  map[string]*CQLSessionState // key: lowercased name
	questions map[core.TaskID]*CQLQuestionState
}

func (r *cqlReplica) session(name string) *CQLSessionState {
	key := strings.ToLower(name)
	if r.sessions == nil {
		r.sessions = make(map[string]*CQLSessionState)
	}
	st := r.sessions[key]
	if st == nil {
		st = &CQLSessionState{
			Name:     name,
			Prepared: make(map[string]string),
			Running:  make(map[string]string),
		}
		r.sessions[key] = st
	}
	return st
}

// applyCQLEvent folds one EvCql* event; caller holds s.mu. Returns false
// for non-CQL event types so applyEvent can fall through.
func (r *cqlReplica) apply(ev *Event) bool {
	switch ev.Type {
	case EvCqlSessionCreated:
		r.session(ev.Session)
	case EvCqlSessionClosed:
		delete(r.sessions, strings.ToLower(ev.Session))
	case EvCqlPrepared:
		r.session(ev.Session).Prepared[ev.Name] = ev.Src
	case EvCqlQueryStarted:
		r.session(ev.Session).Running[ev.Query] = ev.Src
	case EvCqlQueryFinished:
		delete(r.session(ev.Session).Running, ev.Query)
	case EvCqlQuestionPublished:
		if r.questions == nil {
			r.questions = make(map[core.TaskID]*CQLQuestionState)
		}
		r.questions[ev.TaskID] = &CQLQuestionState{Task: ev.TaskID, Reserved: ev.Amount}
	case EvCqlQuestionRefund:
		if q := r.questions[ev.TaskID]; q != nil {
			q.Refunded += ev.Amount
		}
	case EvCqlQuestionClosed:
		delete(r.questions, ev.TaskID)
	default:
		return false
	}
	return true
}

// spendDelta is how an event moves the durable budget spend: the publish
// charge and the per-answer / close refunds mirror the live gateway's
// reservation protocol, so the replica's spend equals the live budget's at
// every journaled instant.
func cqlSpendDelta(ev *Event) float64 {
	switch ev.Type {
	case EvCqlQuestionPublished:
		return ev.Amount
	case EvCqlQuestionRefund, EvCqlQuestionClosed:
		return -ev.Amount
	}
	return 0
}

// CQLState returns deep copies of the recovered CQL session and open-
// question state, sessions sorted by name and questions by task ID so the
// server's recovery pass is deterministic.
func (s *Store) CQLState() ([]CQLSessionState, []CQLQuestionState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sessions []CQLSessionState
	for _, st := range s.repCQL.sessions {
		cp := CQLSessionState{
			Name:     st.Name,
			Prepared: make(map[string]string, len(st.Prepared)),
			Running:  make(map[string]string, len(st.Running)),
		}
		for k, v := range st.Prepared {
			cp.Prepared[k] = v
		}
		for k, v := range st.Running {
			cp.Running[k] = v
		}
		sessions = append(sessions, cp)
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].Name < sessions[j].Name })
	var questions []CQLQuestionState
	for _, q := range s.repCQL.questions {
		questions = append(questions, *q)
	}
	sort.Slice(questions, func(i, j int) bool { return questions[i].Task < questions[j].Task })
	return sessions, questions
}

// The session-lifecycle appenders below land on segment 0 (no task
// affinity, like budget events). Under FsyncAlways they sync before
// returning: the HTTP acks that follow them (session created, statement
// prepared, query handle returned) then imply the transition is on disk,
// extending the ack-implies-durable contract to the query service. These
// are human-latency operations, so the extra fsync is noise.

// CQLSessionCreated journals that a named session opened.
func (s *Store) CQLSessionCreated(name string) error {
	return s.appendSeg(0, &Event{Type: EvCqlSessionCreated, Session: name},
		s.opts.Fsync == FsyncAlways)
}

// CQLSessionClosed journals that a named session closed gracefully;
// recovery will not restore it.
func (s *Store) CQLSessionClosed(name string) error {
	return s.appendSeg(0, &Event{Type: EvCqlSessionClosed, Session: name},
		s.opts.Fsync == FsyncAlways)
}

// CQLPrepared journals a prepared statement's source under its name.
func (s *Store) CQLPrepared(session, name, src string) error {
	return s.appendSeg(0, &Event{Type: EvCqlPrepared, Session: session, Name: name, Src: src},
		s.opts.Fsync == FsyncAlways)
}

// CQLQueryStarted journals that a query handle began executing src.
func (s *Store) CQLQueryStarted(session, qid, src string) error {
	return s.appendSeg(0, &Event{Type: EvCqlQueryStarted, Session: session, Query: qid, Src: src},
		s.opts.Fsync == FsyncAlways)
}

// CQLQueryFinished journals a query handle's terminal status. Lazy sync:
// losing it re-marks an already-finished query as recovered after a
// crash, which is harmless.
func (s *Store) CQLQueryFinished(session, qid, status string) error {
	return s.appendSeg(0, &Event{
		Type: EvCqlQueryFinished, Session: session, Query: qid, Status: status,
	}, false)
}

// CQLQuestionPublished journals the gateway's reservation of k budget
// units for a freshly published crowd question. It rides the task's own
// WAL segment, ordered with the task-added record.
func (s *Store) CQLQuestionPublished(id core.TaskID, k float64) error {
	return s.appendSeg(s.segFor(id), &Event{
		Type: EvCqlQuestionPublished, TaskID: id, Amount: k,
	}, s.opts.Fsync == FsyncAlways)
}

// CQLQuestionRefunded journals the release of part of a question's
// reservation as answers arrive. Lazy sync: the matching answer records
// are what acks gate on, and recovery refunds any remainder a lost
// refund event would have covered.
func (s *Store) CQLQuestionRefunded(id core.TaskID, amount float64) error {
	return s.appendSeg(s.segFor(id), &Event{
		Type: EvCqlQuestionRefund, TaskID: id, Amount: amount,
	}, false)
}

// CQLQuestionClosed journals a question's retirement, refunding the
// unconsumed remainder of its reservation (0 for a question that reached
// full redundancy). Synced under FsyncAlways so a cancel ack implies the
// refund is durable.
func (s *Store) CQLQuestionClosed(id core.TaskID, refund float64) error {
	return s.appendSeg(s.segFor(id), &Event{
		Type: EvCqlQuestionClosed, TaskID: id, Amount: refund,
	}, s.opts.Fsync == FsyncAlways)
}
