package durable

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Fsync selects when WAL appends reach stable storage; see FsyncPolicy.
	Fsync FsyncPolicy
	// FsyncEvery is the background flush interval under FsyncInterval
	// (defaults to 100ms when unset).
	FsyncEvery time.Duration
	// SnapshotEvery, when positive, snapshots (and truncates the WAL) on a
	// background ticker whenever records accumulated since the last
	// snapshot. Zero disables automatic snapshots; Close still writes one.
	SnapshotEvery time.Duration
	// Segments splits the WAL into this many task-hash segments, each with
	// its own file, append mutex, and fsync pipeline, partitioned by the
	// same core.ShardIndex the sharded serving pool uses — so two answers
	// on different shards never serialize on one log lock or share an
	// fsync queue. Zero or one keeps the single historical wal.log.
	// Recovery merge-replays whatever segment files the directory holds
	// (ordered by the global sequence number), so a data dir written with
	// one segment count opens correctly under another.
	Segments int
}

// RecoveryInfo reports what Open found in the data directory.
type RecoveryInfo struct {
	// SnapshotLoaded is true when a pool.snap was loaded.
	SnapshotLoaded bool
	// SnapshotSeq is the loaded snapshot's LastSeq (0 without a snapshot).
	SnapshotSeq uint64
	// Replayed counts WAL events applied on top of the snapshot.
	Replayed int
	// Skipped counts WAL events at or below SnapshotSeq (a crash landed
	// between snapshot publication and WAL truncation) that were not
	// re-applied.
	Skipped int
	// TornBytes is the total size of invalid tails truncated off the WAL
	// segments (0 when every log ended cleanly).
	TornBytes int64
	// ReplayDuration is the wall time spent loading and replaying.
	ReplayDuration time.Duration
	// Segments is the number of WAL segments the store operates with.
	Segments int
	// Tasks, Answers, and BudgetSpent describe the recovered state.
	Tasks       int
	Answers     int
	BudgetSpent float64
	// CQLSessions counts recovered open CrowdQL sessions;
	// CQLRunningQueries counts queries that were mid-flight at crash time
	// (their handles come back with status "recovered"); CQLOpenQuestions
	// counts crowd questions whose budget reservation was never released —
	// the server's recovery pass closes them and refunds the remainder.
	CQLSessions       int
	CQLRunningQueries int
	CQLOpenQuestions  int
}

// Empty reports whether recovery found any durable state at all.
func (ri *RecoveryInfo) Empty() bool {
	return !ri.SnapshotLoaded && ri.Replayed == 0 && ri.Skipped == 0
}

// segment is one WAL shard: a log file plus the replica of the pool slice
// whose events it holds. mu serializes sequence assignment, the framed
// write, and the replica fold for this segment only — appends to
// different segments run fully in parallel.
type segment struct {
	mu  sync.Mutex
	w   *wal
	rep *core.Pool

	// Group-commit bookkeeping. appended is the highest sequence number
	// written to this segment's file (stored under mu); synced is the
	// highest known flushed (stored under syncMu). An ack path needing
	// seq ≤ synced returns without touching the file: some other caller's
	// fsync — the group-commit leader — already covered it.
	appended atomic.Uint64
	synced   atomic.Uint64
	syncMu   sync.Mutex
}

// syncUpTo ensures every record of this segment with sequence number ≤
// seq is on stable storage. Concurrent callers elect a leader via syncMu:
// the leader fsyncs once for everything appended so far, and followers
// whose seq is already covered return immediately — one fsync
// acknowledges a whole burst of answers.
func (seg *segment) syncUpTo(seq uint64) error {
	if seg.synced.Load() >= seq {
		return nil
	}
	seg.syncMu.Lock()
	defer seg.syncMu.Unlock()
	if seg.synced.Load() >= seq {
		return nil
	}
	upTo := seg.appended.Load()
	if err := seg.w.sync(); err != nil {
		return err
	}
	seg.synced.Store(upTo)
	return nil
}

// Store journals pool mutations to a segmented WAL, maintains a replica
// of the pool state the journal describes, and compacts the journal into
// snapshots.
//
// Events are routed to segments by task hash (core.ShardIndex — the same
// function the sharded serving pool uses, so a pool shard and its WAL
// segment always agree). Each segment folds its events into its own
// single-threaded core.Pool replica under the segment mutex; cross-task
// state (budget spend, golden-screen tallies) lives under the store
// mutex. A global atomic sequence number is drawn while the owning
// segment's mutex is held, so sequence numbers are unique across segments
// and monotonically increasing within each file — recovery k-way merges
// the segment files by sequence number and replays a valid global order.
//
// All methods are safe for concurrent use. After a write error the store
// is sticky-failed: every subsequent append returns the original error,
// so the serving layer stops acknowledging work the log cannot hold.
type Store struct {
	dir  string
	opts Options
	segs []*segment
	ins  *walInstruments

	// mu guards the store-global state: the sequence counter, snapshot
	// bookkeeping, sticky error, and the cross-task replica (budget spend,
	// screen tallies). Lock order is segment mutexes (ascending) before
	// mu; mu is only ever held briefly and never across I/O.
	mu        sync.Mutex
	repSpent  float64
	repScreen map[string]core.ScreenTally
	repCQL    cqlReplica
	seq       uint64 // last assigned event sequence number
	snapSeq   uint64 // seq covered by the last published snapshot
	err       error  // sticky write error; nil while healthy
	closed    bool

	stop     chan struct{}
	bg       sync.WaitGroup
	replayed obs.Counter
	skipped  obs.Counter
	snaps    obs.Counter
	snapErrs obs.Counter
	replayS  float64 // replay duration in seconds, fixed at Open
}

// Open recovers state from dir (creating it if needed) and returns a store
// ready to journal new mutations, plus a report of what was recovered.
// A torn or corrupt WAL tail is truncated, not an error: the discarded
// suffix was never acknowledged.
//
// Recovery reads the snapshot, splits it into per-segment replicas, then
// merge-replays every WAL segment file found in the directory — including
// files from a previous layout with a different segment count, whose
// events are re-routed to their current owners. Leftover files from a
// larger previous layout are folded into a fresh snapshot and deleted, so
// the directory converges to the configured layout.
func Open(dir string, opts Options) (*Store, *RecoveryInfo, error) {
	if opts.Fsync == FsyncInterval && opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 100 * time.Millisecond
	}
	if opts.Segments < 1 {
		opts.Segments = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: creating data dir: %w", err)
	}
	start := time.Now()
	info := &RecoveryInfo{Segments: opts.Segments}

	rep := core.NewPool()
	var spent float64
	screen := make(map[string]core.ScreenTally)
	var seq uint64

	snap, err := loadSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	if snap != nil {
		rep, spent, screen, err = snap.restore()
		if err != nil {
			return nil, nil, err
		}
		seq = snap.LastSeq
		info.SnapshotLoaded = true
		info.SnapshotSeq = snap.LastSeq
	}

	s := &Store{
		dir:       dir,
		opts:      opts,
		segs:      make([]*segment, opts.Segments),
		ins:       newWALInstruments(),
		repSpent:  spent,
		repScreen: screen,
		seq:       seq,
		snapSeq:   seq,
		stop:      make(chan struct{}),
	}
	if snap != nil {
		s.repCQL = snap.restoreCQL()
	}
	for i, segRep := range core.SplitPool(rep, opts.Segments) {
		s.segs[i] = &segment{rep: segRep}
	}

	// Discover every WAL segment file present, current layout or not.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: scanning data dir: %w", err)
	}
	type walFile struct {
		idx  int
		path string
	}
	var files, stale []walFile
	for _, e := range entries {
		idx, ok := parseSegWALName(e.Name())
		if !ok {
			continue
		}
		f := walFile{idx: idx, path: filepath.Join(dir, e.Name())}
		files = append(files, f)
		if idx >= opts.Segments {
			stale = append(stale, f)
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].idx < files[j].idx })

	// Decode each file, truncating torn or undecodable tails, then merge
	// every surviving event into one sequence-ordered replay.
	var events []Event
	for _, f := range files {
		payloads, validBytes, torn, err := readWAL(f.path)
		if err != nil {
			return nil, nil, err
		}
		off := int64(0)
		for _, payload := range payloads {
			var ev Event
			if jerr := json.Unmarshal(payload, &ev); jerr != nil {
				// The frame checksum verified but the payload does not
				// decode: treat it like a torn tail and cut this file here.
				// Everything after an undecodable record in the same file is
				// unreachable anyway — replay could not order it.
				torn = validBytes - off + torn
				validBytes = off
				break
			}
			off += frameHeader + int64(len(payload))
			events = append(events, ev)
		}
		if torn > 0 {
			if err := os.Truncate(f.path, validBytes); err != nil {
				return nil, nil, fmt.Errorf("durable: truncating torn WAL tail: %w", err)
			}
		}
		info.TornBytes += torn
	}
	// Sequence numbers are unique globally and monotonic within each file,
	// so sorting by Seq reconstructs a valid interleaving of the original
	// mutation order.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	for i := range events {
		ev := &events[i]
		if ev.Seq <= s.snapSeq {
			info.Skipped++
			continue
		}
		s.applyEvent(ev)
		if ev.Seq > s.seq {
			s.seq = ev.Seq
		}
		info.Replayed++
	}

	for i := range s.segs {
		w, err := openWALShared(filepath.Join(dir, segWALName(i)), s.ins)
		if err != nil {
			return nil, nil, err
		}
		s.segs[i].w = w
	}
	if len(stale) > 0 {
		// Files from a larger previous layout: their events are now in the
		// replicas (and covered by the snapshot we are about to force), so
		// the files can go — otherwise nothing would ever truncate them.
		s.lockAll()
		err := s.snapshotLocked()
		s.unlockAll()
		if err != nil {
			return nil, nil, err
		}
		for _, f := range stale {
			if err := os.Remove(f.path); err != nil {
				return nil, nil, fmt.Errorf("durable: removing stale WAL segment: %w", err)
			}
		}
	}
	s.replayed.Add(int64(info.Replayed))
	s.skipped.Add(int64(info.Skipped))

	info.ReplayDuration = time.Since(start)
	info.Tasks, info.Answers = 0, 0
	for _, seg := range s.segs {
		info.Tasks += seg.rep.Len()
		info.Answers += seg.rep.TotalAnswers()
	}
	info.BudgetSpent = s.repSpent
	info.CQLSessions = len(s.repCQL.sessions)
	for _, sess := range s.repCQL.sessions {
		info.CQLRunningQueries += len(sess.Running)
	}
	info.CQLOpenQuestions = len(s.repCQL.questions)
	s.replayS = info.ReplayDuration.Seconds()

	if opts.Fsync == FsyncInterval {
		s.bg.Add(1)
		go s.flusher()
	}
	if opts.SnapshotEvery > 0 {
		s.bg.Add(1)
		go s.snapshotter()
	}
	return s, info, nil
}

// segFor returns the index of the segment owning a task's events.
func (s *Store) segFor(id core.TaskID) int { return core.ShardIndex(id, len(s.segs)) }

// segRep returns the replica of the segment owning the task.
func (s *Store) segRep(id core.TaskID) *core.Pool { return s.segs[s.segFor(id)].rep }

// segForWorker routes worker-keyed events (elimination markers) that have
// no task affinity.
func (s *Store) segForWorker(worker string) int {
	if len(s.segs) == 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(worker))
	return int(h.Sum64() % uint64(len(s.segs)))
}

// lockAll acquires every segment mutex in ascending order, then the store
// mutex — the global lock order. Used by snapshots and State, which need
// a consistent cross-segment cut.
func (s *Store) lockAll() {
	for _, seg := range s.segs {
		seg.mu.Lock()
	}
	s.mu.Lock()
}

func (s *Store) unlockAll() {
	s.mu.Unlock()
	for i := len(s.segs) - 1; i >= 0; i-- {
		s.segs[i].mu.Unlock()
	}
}

// State returns a deep copy of the recovered pool (per-segment replicas
// merged into one pool, in ascending task-ID order for multi-segment
// stores) plus the durable budget spend and golden-screen tallies. The
// serving layer adopts the copy as its live pool; the store keeps the
// replicas, so the two evolve independently (the replicas only through
// journaled events).
func (s *Store) State() (*core.Pool, float64, map[string]core.ScreenTally) {
	s.lockAll()
	defer s.unlockAll()
	reps := make([]*core.Pool, len(s.segs))
	for i, seg := range s.segs {
		reps[i] = seg.rep
	}
	screen := make(map[string]core.ScreenTally, len(s.repScreen))
	for w, t := range s.repScreen {
		screen[w] = t
	}
	return core.MergePools(reps), s.repSpent, screen
}

// Err returns the sticky write error, or nil while the store is healthy.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// fail records the first write error; later errors keep the original.
func (s *Store) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// applyEvent folds one event into the replica state, routing each piece
// to the segment that owns its task. Events were validated by the live
// pool before they were journaled, so replica errors indicate either
// corruption replay already cut off or a duplicate delivery; both are
// skipped rather than fatal.
//
// On the live append path the caller holds the owning segment's mutex and
// the event touches only that segment by construction (appends are routed
// and batches are grouped before journaling). During recovery nothing is
// concurrent, so cross-segment events from an older layout may fan out
// freely.
func (s *Store) applyEvent(ev *Event) {
	switch ev.Type {
	case EvTaskAdded:
		if ev.Task != nil {
			_, _ = s.segRep(ev.Task.ID).Add(ev.Task.task())
		}
	case EvAnswerRecorded:
		if ev.Answer != nil {
			_ = s.segRep(ev.Answer.Task).Record(ev.Answer.answer())
		}
		s.mu.Lock()
		s.repSpent += ev.Cost
		if ev.Golden != nil {
			s.tallyLocked(ev.Worker, *ev.Golden)
		}
		s.mu.Unlock()
	case EvAnswerBatch:
		for i := range ev.Answers {
			_ = s.segRep(ev.Answers[i].Task).Record(ev.Answers[i].answer())
		}
		s.mu.Lock()
		s.repSpent += ev.Cost
		for i := range ev.Goldens {
			if ev.Goldens[i] != nil && i < len(ev.Answers) {
				s.tallyLocked(ev.Answers[i].Worker, *ev.Goldens[i])
			}
		}
		s.mu.Unlock()
	case EvTaskClosed:
		s.segRep(ev.TaskID).Close(ev.TaskID)
	case EvWorkerEliminated:
		// Audit marker only: eliminations are derived from the tallies.
	case EvBudgetCharged:
		s.mu.Lock()
		s.repSpent += ev.Amount
		s.mu.Unlock()
	case EvBudgetRefunded:
		s.mu.Lock()
		s.repSpent -= ev.Amount
		if s.repSpent < 0 {
			s.repSpent = 0
		}
		s.mu.Unlock()
	case EvLeaseIssued:
		if ev.Lease != nil {
			_ = s.segRep(ev.Lease.Task).Lease(ev.Lease.Task, ev.Lease.Worker, ev.Lease.deadline())
		}
	case EvLeaseExpired:
		for i := range ev.Leases {
			s.segRep(ev.Leases[i].Task).ReleaseLease(ev.Leases[i].Task, ev.Leases[i].Worker)
		}
	default:
		// CrowdQL session/question events fold into the cross-task replica;
		// the reservation events also move the durable spend, mirroring the
		// live gateway's charge/refund protocol.
		s.mu.Lock()
		if s.repCQL.apply(ev) {
			s.repSpent += cqlSpendDelta(ev)
			if s.repSpent < 0 {
				s.repSpent = 0
			}
		}
		s.mu.Unlock()
	}
}

// tallyLocked folds one golden observation; caller holds s.mu.
func (s *Store) tallyLocked(worker string, correct bool) {
	t := s.repScreen[worker]
	t.Total++
	if correct {
		t.Correct++
	}
	s.repScreen[worker] = t
}

// appendSeg journals one event on segment si: assign the next global
// sequence number, write the framed record, and fold the event into the
// segment replica — all under the segment's mutex, so that segment's
// replica state and log contents never diverge and its file stays in
// sequence order. sync selects whether the record must reach stable
// storage before returning (the ack path passes true under FsyncAlways);
// the fsync itself runs after the segment mutex is released, through the
// group-commit path, so appends keep flowing while a flush is in flight.
func (s *Store) appendSeg(si int, ev *Event, sync bool) error {
	seg := s.segs[si]
	seg.mu.Lock()
	s.mu.Lock()
	if err := s.err; err != nil {
		s.mu.Unlock()
		seg.mu.Unlock()
		return err
	}
	if s.closed {
		s.mu.Unlock()
		seg.mu.Unlock()
		return fmt.Errorf("durable: store is closed")
	}
	s.seq++
	ev.Seq = s.seq
	s.mu.Unlock()
	payload, err := json.Marshal(ev)
	if err != nil {
		// The sequence number is abandoned; gaps are harmless, replay only
		// needs relative order.
		seg.mu.Unlock()
		return fmt.Errorf("durable: encoding %s event: %w", ev.Type, err)
	}
	if err := seg.w.append(payload); err != nil {
		seg.mu.Unlock()
		s.fail(err)
		return err
	}
	seg.appended.Store(ev.Seq)
	s.applyEvent(ev)
	seg.mu.Unlock()
	if sync {
		if err := seg.syncUpTo(ev.Seq); err != nil {
			s.fail(err)
			return err
		}
	}
	return nil
}

// AnswerDurable journals an accepted answer together with the budget units
// it was charged and, for golden tasks, whether the worker got it right.
// Under FsyncAlways it returns only after the record is on stable storage.
// The serving layer calls this after Pool.Record succeeds and must not
// acknowledge the client unless it returns nil — that is the
// ack-implies-durable invariant.
func (s *Store) AnswerDurable(a core.Answer, cost float64, golden *bool) error {
	return s.appendSeg(s.segFor(a.Task), &Event{
		Type:   EvAnswerRecorded,
		Answer: answerRecord(a),
		Worker: a.Worker,
		Cost:   cost,
		Golden: golden,
	}, s.opts.Fsync == FsyncAlways)
}

// AnswerDurableCtx is AnswerDurable with trace spans: when ctx carries a
// recording span (the serving layer's tracing mode), the WAL append and
// the fsync record as separate child spans — wal.append and wal.fsync —
// so a trace shows whether an answer's tail latency went to the log
// write or to stable storage. Without a collector in ctx it is exactly
// AnswerDurable: one call, no allocations, same sync path.
func (s *Store) AnswerDurableCtx(ctx context.Context, a core.Answer, cost float64, golden *bool) error {
	if obs.CollectorFrom(ctx) == nil {
		return s.AnswerDurable(a, cost, golden)
	}
	si := s.segFor(a.Task)
	ev := &Event{
		Type:   EvAnswerRecorded,
		Answer: answerRecord(a),
		Worker: a.Worker,
		Cost:   cost,
		Golden: golden,
	}
	// Both spans parent to ctx's current span (the request root), not to
	// each other: append and fsync are sequential phases of one durable
	// write, and reading the trace as two siblings shows their split.
	_, asp := obs.ChildSpan(ctx, "wal.append")
	err := s.appendSeg(si, ev, false)
	asp.SetAttr(obs.Int("segment", int64(si)), obs.Int("seq", int64(ev.Seq)))
	asp.SetError(err)
	asp.End()
	if err != nil {
		return err
	}
	if s.opts.Fsync != FsyncAlways {
		return nil
	}
	// Same split AnswerBatchDurable uses: append under the segment mutex,
	// then group-commit the fsync — here under its own span.
	_, fsp := obs.ChildSpan(ctx, "wal.fsync")
	err = s.syncSeg(si, ev.Seq)
	fsp.SetAttr(obs.Int("segment", int64(si)))
	fsp.SetError(err)
	fsp.End()
	return err
}

// syncSeg flushes segment si through seq, recording a failure as the
// store's sticky error (matching appendSeg's sync path).
func (s *Store) syncSeg(si int, seq uint64) error {
	if err := s.segs[si].syncUpTo(seq); err != nil {
		s.fail(err)
		return err
	}
	return nil
}

// AnswerBatchDurable journals a batch of accepted answers with one append
// (and, under FsyncAlways, one fsync) per touched WAL segment. costs and
// goldens are index-aligned with as; either may be nil. The same
// ack-implies-durable contract as AnswerDurable applies to the batch as a
// whole: callers must not acknowledge any of the batch unless this
// returns nil. When the serving pool's shard count equals the store's
// segment count — how crowdserve always configures them — a per-shard
// batch maps to exactly one segment, so the batch commits atomically; a
// failed append leaves the store sticky-failed either way, and the caller
// rolls the batch back.
func (s *Store) AnswerBatchDurable(as []core.Answer, costs []float64, goldens []*bool) error {
	if len(as) == 0 {
		return nil
	}
	groups := make(map[int]*Event)
	var order []int
	anyGolden := false
	for i := range as {
		si := s.segFor(as[i].Task)
		ev := groups[si]
		if ev == nil {
			ev = &Event{Type: EvAnswerBatch}
			groups[si] = ev
			order = append(order, si)
		}
		ev.Answers = append(ev.Answers, *answerRecord(as[i]))
		if costs != nil {
			ev.Cost += costs[i]
		}
		var g *bool
		if goldens != nil {
			g = goldens[i]
		}
		if g != nil {
			anyGolden = true
		}
		ev.Goldens = append(ev.Goldens, g)
	}
	if !anyGolden {
		for _, ev := range groups {
			ev.Goldens = nil
		}
	}
	sort.Ints(order)
	for _, si := range order {
		if err := s.appendSeg(si, groups[si], false); err != nil {
			return err
		}
	}
	if s.opts.Fsync == FsyncAlways {
		for _, si := range order {
			if err := s.segs[si].syncUpTo(groups[si].Seq); err != nil {
				s.fail(err)
				return err
			}
		}
	}
	return nil
}

// WorkerEliminated journals the audit marker for a worker crossing the
// elimination threshold. Best-effort: the tallies that imply the
// elimination ride the answer records, so losing the marker loses nothing.
func (s *Store) WorkerEliminated(worker string) {
	_ = s.appendSeg(s.segForWorker(worker), &Event{Type: EvWorkerEliminated, Worker: worker}, false)
}

// BudgetCharged journals a budget charge that does not ride an answer
// record (bulk pricing, manual adjustment). Budget events have no task
// affinity and always land on segment 0.
func (s *Store) BudgetCharged(amount float64) error {
	return s.appendSeg(0, &Event{Type: EvBudgetCharged, Amount: amount}, s.opts.Fsync == FsyncAlways)
}

// BudgetRefunded journals the reversal of such a charge.
func (s *Store) BudgetRefunded(amount float64) error {
	return s.appendSeg(0, &Event{Type: EvBudgetRefunded, Amount: amount}, s.opts.Fsync == FsyncAlways)
}

// TaskAdded, TaskClosed, LeaseIssued, and LeasesExpired implement
// core.Journal, so the store can be attached to a ConcurrentPool (or each
// shard of a ShardedPool) with SetJournal. They run under the pool's
// write lock and therefore must not block on fsync; the records reach
// disk with the next answer ack or background flush. Write failures go
// sticky (visible through Err and the answer path) since the interface
// cannot surface them.
func (s *Store) TaskAdded(t *core.Task) {
	_ = s.appendSeg(s.segFor(t.ID), &Event{Type: EvTaskAdded, Task: taskRecord(t)}, false)
}

// TaskClosed implements core.Journal.
func (s *Store) TaskClosed(id core.TaskID) {
	_ = s.appendSeg(s.segFor(id), &Event{Type: EvTaskClosed, TaskID: id}, false)
}

// LeaseIssued implements core.Journal.
func (s *Store) LeaseIssued(l core.Lease) {
	_ = s.appendSeg(s.segFor(l.Task), &Event{Type: EvLeaseIssued, Lease: leaseRecord(l)}, false)
}

// LeasesExpired implements core.Journal. A sweep may reclaim leases on
// several segments; each segment gets its own event so every record stays
// on the log of the shard that owns its task.
func (s *Store) LeasesExpired(ls []core.Lease) {
	groups := make(map[int][]LeaseRecord)
	var order []int
	for _, l := range ls {
		si := s.segFor(l.Task)
		if _, ok := groups[si]; !ok {
			order = append(order, si)
		}
		groups[si] = append(groups[si], *leaseRecord(l))
	}
	sort.Ints(order)
	for _, si := range order {
		_ = s.appendSeg(si, &Event{Type: EvLeaseExpired, Leases: groups[si]}, false)
	}
}

// Snapshot publishes the merged replicas as pool.snap and truncates every
// WAL segment. It holds all segment mutexes for the duration, so
// concurrent appends stall briefly rather than racing the truncation (a
// record appended after the snapshot image was taken must not be
// discarded with the pre-snapshot log). No-op when nothing was journaled
// since the last snapshot.
func (s *Store) Snapshot() error {
	s.lockAll()
	defer s.unlockAll()
	return s.snapshotLocked()
}

// snapshotLocked requires every segment mutex and the store mutex
// (lockAll).
func (s *Store) snapshotLocked() error {
	if s.err != nil {
		return s.err
	}
	if s.seq == s.snapSeq {
		return nil
	}
	reps := make([]*core.Pool, len(s.segs))
	for i, seg := range s.segs {
		reps[i] = seg.rep
	}
	snap := buildSnapshot(core.MergePools(reps), s.repSpent, s.repScreen, s.seq, &s.repCQL)
	if err := writeSnapshot(s.dir, snap); err != nil {
		s.snapErrs.Inc()
		return err
	}
	for _, seg := range s.segs {
		if err := seg.w.truncate(); err != nil {
			// The snapshot covers every truncated record, so a failed
			// truncate only leaves redundant records behind (replay skips
			// them by Seq); the log keeps growing though, so surface the
			// error.
			s.snapErrs.Inc()
			return err
		}
		// Nothing is pending after a truncate; credit the sync high-water
		// mark so the next ack does not fsync an empty file.
		seg.synced.Store(seg.appended.Load())
	}
	s.snapSeq = s.seq
	s.snaps.Inc()
	return nil
}

// currentSnapshot builds (but does not publish) a snapshot of the replica
// state; tests use it to simulate a crash between snapshot publication
// and WAL truncation.
func (s *Store) currentSnapshot() *Snapshot {
	s.lockAll()
	defer s.unlockAll()
	reps := make([]*core.Pool, len(s.segs))
	for i, seg := range s.segs {
		reps[i] = seg.rep
	}
	return buildSnapshot(core.MergePools(reps), s.repSpent, s.repScreen, s.seq, &s.repCQL)
}

// flusher batches fsyncs across all segments under FsyncInterval.
func (s *Store) flusher() {
	defer s.bg.Done()
	t := time.NewTicker(s.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			healthy := s.err == nil && !s.closed
			s.mu.Unlock()
			if !healthy {
				continue
			}
			for _, seg := range s.segs {
				if err := seg.syncUpTo(seg.appended.Load()); err != nil {
					s.fail(err)
					break
				}
			}
		}
	}
}

// snapshotter compacts the WAL on a timer.
func (s *Store) snapshotter() {
	defer s.bg.Done()
	t := time.NewTicker(s.opts.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			_ = s.Snapshot()
		}
	}
}

// Close stops the background goroutines, writes a final snapshot, flushes,
// and closes every WAL segment. The store refuses appends afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	s.mu.Unlock()
	s.bg.Wait()

	s.lockAll()
	defer s.unlockAll()
	err := s.snapshotLocked()
	for _, seg := range s.segs {
		if cerr := seg.w.close(false); err == nil {
			err = cerr
		}
	}
	return err
}

// Crash simulates kill -9 at the durability boundary, for tests: every
// WAL file descriptor is closed with no flush and no snapshot, and the
// store goes sticky-failed so every later append errors. On-disk state is
// left exactly as a real crash would — whatever write() already reached
// the kernel survives, nothing else does.
func (s *Store) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = fmt.Errorf("durable: store crashed")
	close(s.stop)
	s.mu.Unlock()
	for _, seg := range s.segs {
		_ = seg.w.close(true)
	}
	s.bg.Wait()
}

// Dir returns the data directory the store persists into.
func (s *Store) Dir() string { return s.dir }

// Fsync returns the store's fsync policy.
func (s *Store) Fsync() FsyncPolicy { return s.opts.Fsync }

// Segments returns the number of WAL segments.
func (s *Store) Segments() int { return len(s.segs) }

// RegisterMetrics exposes the store's always-on instruments on a registry:
// WAL append and fsync latency histograms, record/byte/fsync/snapshot
// counters (aggregated across segments), the segment count, and the
// recovery statistics from Open.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterHistogram("crowdkit_wal_append_seconds", s.ins.appendLat)
	reg.RegisterHistogram("crowdkit_wal_fsync_seconds", s.ins.fsyncLat)
	reg.RegisterCounter("crowdkit_wal_records_total", &s.ins.records)
	reg.RegisterCounter("crowdkit_wal_bytes_total", &s.ins.bytes)
	reg.RegisterCounter("crowdkit_wal_fsyncs_total", &s.ins.fsyncs)
	reg.RegisterCounter("crowdkit_wal_snapshots_total", &s.snaps)
	reg.RegisterCounter("crowdkit_wal_snapshot_errors_total", &s.snapErrs)
	reg.RegisterCounter("crowdkit_recovery_replayed_records_total", &s.replayed)
	reg.RegisterCounter("crowdkit_recovery_skipped_records_total", &s.skipped)
	reg.GaugeFunc("crowdkit_recovery_replay_seconds", func() float64 { return s.replayS })
	reg.GaugeFunc("crowdkit_wal_segments", func() float64 { return float64(len(s.segs)) })
	reg.GaugeFunc("crowdkit_wal_size_bytes", func() float64 {
		var total float64
		for i := range s.segs {
			if fi, err := os.Stat(filepath.Join(s.dir, segWALName(i))); err == nil {
				total += float64(fi.Size())
			}
		}
		return total
	})
}
