package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Fsync selects when WAL appends reach stable storage; see FsyncPolicy.
	Fsync FsyncPolicy
	// FsyncEvery is the background flush interval under FsyncInterval
	// (defaults to 100ms when unset).
	FsyncEvery time.Duration
	// SnapshotEvery, when positive, snapshots (and truncates the WAL) on a
	// background ticker whenever records accumulated since the last
	// snapshot. Zero disables automatic snapshots; Close still writes one.
	SnapshotEvery time.Duration
}

// RecoveryInfo reports what Open found in the data directory.
type RecoveryInfo struct {
	// SnapshotLoaded is true when a pool.snap was loaded.
	SnapshotLoaded bool
	// SnapshotSeq is the loaded snapshot's LastSeq (0 without a snapshot).
	SnapshotSeq uint64
	// Replayed counts WAL events applied on top of the snapshot.
	Replayed int
	// Skipped counts WAL events at or below SnapshotSeq (a crash landed
	// between snapshot publication and WAL truncation) that were not
	// re-applied.
	Skipped int
	// TornBytes is the size of the invalid tail truncated off the WAL
	// (0 when the log ended cleanly).
	TornBytes int64
	// ReplayDuration is the wall time spent loading and replaying.
	ReplayDuration time.Duration
	// Tasks, Answers, and BudgetSpent describe the recovered state.
	Tasks       int
	Answers     int
	BudgetSpent float64
}

// Empty reports whether recovery found any durable state at all.
func (ri *RecoveryInfo) Empty() bool {
	return !ri.SnapshotLoaded && ri.Replayed == 0 && ri.Skipped == 0
}

// Store journals pool mutations to a WAL, maintains a replica of the pool
// state the journal describes, and compacts the journal into snapshots.
//
// The replica is the store's own single-threaded core.Pool (plus the
// durable budget spend and golden-screen tallies), updated under the
// store's mutex atomically with each append. Snapshots serialize the
// replica, so a snapshot is consistent with its LastSeq by construction —
// the store never has to freeze the live serving pool, and lock ordering
// stays one-way (callers hold their own locks, then the store's; the store
// holds no lock while calling out).
//
// All methods are safe for concurrent use. After a write error the store
// is sticky-failed: every subsequent append returns the original error, so
// the serving layer stops acknowledging work the log cannot hold.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	w         *wal
	rep       *core.Pool
	repSpent  float64
	repScreen map[string]core.ScreenTally
	seq       uint64 // last assigned event sequence number
	snapSeq   uint64 // seq covered by the last published snapshot
	err       error  // sticky write error; nil while healthy
	closed    bool

	stop     chan struct{}
	bg       sync.WaitGroup
	replayed obs.Counter
	skipped  obs.Counter
	snaps    obs.Counter
	snapErrs obs.Counter
	replayS  float64 // replay duration in seconds, fixed at Open
}

// Open recovers state from dir (creating it if needed) and returns a store
// ready to journal new mutations, plus a report of what was recovered.
// A torn or corrupt WAL tail is truncated, not an error: the discarded
// suffix was never acknowledged.
func Open(dir string, opts Options) (*Store, *RecoveryInfo, error) {
	if opts.Fsync == FsyncInterval && opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: creating data dir: %w", err)
	}
	start := time.Now()
	info := &RecoveryInfo{}

	rep := core.NewPool()
	var spent float64
	screen := make(map[string]core.ScreenTally)
	var seq uint64

	snap, err := loadSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	if snap != nil {
		rep, spent, screen, err = snap.restore()
		if err != nil {
			return nil, nil, err
		}
		seq = snap.LastSeq
		info.SnapshotLoaded = true
		info.SnapshotSeq = snap.LastSeq
	}

	walPath := filepath.Join(dir, walName)
	payloads, validBytes, torn, err := readWAL(walPath)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		rep:       rep,
		repSpent:  spent,
		repScreen: screen,
		seq:       seq,
		snapSeq:   seq,
		stop:      make(chan struct{}),
	}
	off := int64(0)
	for _, payload := range payloads {
		var ev Event
		if jerr := json.Unmarshal(payload, &ev); jerr != nil {
			// The frame checksum verified but the payload does not decode:
			// treat it like a torn tail and cut the log here. Everything
			// after an undecodable record is unreachable anyway — replay
			// could not order it.
			torn = validBytes - off + torn
			validBytes = off
			break
		}
		off += frameHeader + int64(len(payload))
		if ev.Seq <= s.snapSeq {
			info.Skipped++
			continue
		}
		s.apply(&ev)
		s.seq = ev.Seq
		info.Replayed++
	}
	if torn > 0 {
		if err := os.Truncate(walPath, validBytes); err != nil {
			return nil, nil, fmt.Errorf("durable: truncating torn WAL tail: %w", err)
		}
	}
	info.TornBytes = torn

	w, err := openWAL(walPath)
	if err != nil {
		return nil, nil, err
	}
	s.w = w
	s.replayed.Add(int64(info.Replayed))
	s.skipped.Add(int64(info.Skipped))

	info.ReplayDuration = time.Since(start)
	info.Tasks = rep.Len()
	info.Answers = rep.TotalAnswers()
	info.BudgetSpent = s.repSpent
	s.replayS = info.ReplayDuration.Seconds()

	if opts.Fsync == FsyncInterval {
		s.bg.Add(1)
		go s.flusher()
	}
	if opts.SnapshotEvery > 0 {
		s.bg.Add(1)
		go s.snapshotter()
	}
	return s, info, nil
}

// State returns a deep copy of the recovered pool plus the durable budget
// spend and golden-screen tallies. The serving layer adopts the copy as
// its live pool; the store keeps the original as its replica, so the two
// evolve independently (the replica only through journaled events).
func (s *Store) State() (*core.Pool, float64, map[string]core.ScreenTally) {
	s.mu.Lock()
	defer s.mu.Unlock()
	screen := make(map[string]core.ScreenTally, len(s.repScreen))
	for w, t := range s.repScreen {
		screen[w] = t
	}
	return s.rep.Clone(), s.repSpent, screen
}

// Err returns the sticky write error, or nil while the store is healthy.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// apply folds one event into the replica. Events were validated by the
// live pool before they were journaled, so replica errors indicate either
// corruption replay already cut off or a duplicate delivery; both are
// skipped rather than fatal.
func (s *Store) apply(ev *Event) {
	switch ev.Type {
	case EvTaskAdded:
		if ev.Task != nil {
			_, _ = s.rep.Add(ev.Task.task())
		}
	case EvAnswerRecorded:
		if ev.Answer != nil {
			_ = s.rep.Record(ev.Answer.answer())
		}
		s.repSpent += ev.Cost
		if ev.Golden != nil {
			t := s.repScreen[ev.Worker]
			t.Total++
			if *ev.Golden {
				t.Correct++
			}
			s.repScreen[ev.Worker] = t
		}
	case EvTaskClosed:
		s.rep.Close(ev.TaskID)
	case EvWorkerEliminated:
		// Audit marker only: eliminations are derived from the tallies.
	case EvBudgetCharged:
		s.repSpent += ev.Amount
	case EvBudgetRefunded:
		s.repSpent -= ev.Amount
		if s.repSpent < 0 {
			s.repSpent = 0
		}
	case EvLeaseIssued:
		if ev.Lease != nil {
			_ = s.rep.Lease(ev.Lease.Task, ev.Lease.Worker, ev.Lease.deadline())
		}
	case EvLeaseExpired:
		for i := range ev.Leases {
			s.rep.ReleaseLease(ev.Leases[i].Task, ev.Leases[i].Worker)
		}
	}
}

// append journals one event: assign the next sequence number, write the
// framed record, and fold the event into the replica — all under the
// store's mutex, so replica state and log contents never diverge. sync
// selects whether the record must reach stable storage before returning
// (the ack path passes true under FsyncAlways).
func (s *Store) append(ev *Event, sync bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	s.seq++
	ev.Seq = s.seq
	payload, err := json.Marshal(ev)
	if err != nil {
		s.seq--
		return fmt.Errorf("durable: encoding %s event: %w", ev.Type, err)
	}
	if err := s.w.append(payload); err != nil {
		s.err = err
		return err
	}
	s.apply(ev)
	if sync {
		if err := s.w.sync(); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// AnswerDurable journals an accepted answer together with the budget units
// it was charged and, for golden tasks, whether the worker got it right.
// Under FsyncAlways it returns only after the record is on stable storage.
// The serving layer calls this after Pool.Record succeeds and must not
// acknowledge the client unless it returns nil — that is the
// ack-implies-durable invariant.
func (s *Store) AnswerDurable(a core.Answer, cost float64, golden *bool) error {
	return s.append(&Event{
		Type:   EvAnswerRecorded,
		Answer: answerRecord(a),
		Worker: a.Worker,
		Cost:   cost,
		Golden: golden,
	}, s.opts.Fsync == FsyncAlways)
}

// WorkerEliminated journals the audit marker for a worker crossing the
// elimination threshold. Best-effort: the tallies that imply the
// elimination ride the answer records, so losing the marker loses nothing.
func (s *Store) WorkerEliminated(worker string) {
	_ = s.append(&Event{Type: EvWorkerEliminated, Worker: worker}, false)
}

// BudgetCharged journals a budget charge that does not ride an answer
// record (bulk pricing, manual adjustment).
func (s *Store) BudgetCharged(amount float64) error {
	return s.append(&Event{Type: EvBudgetCharged, Amount: amount}, s.opts.Fsync == FsyncAlways)
}

// BudgetRefunded journals the reversal of such a charge.
func (s *Store) BudgetRefunded(amount float64) error {
	return s.append(&Event{Type: EvBudgetRefunded, Amount: amount}, s.opts.Fsync == FsyncAlways)
}

// TaskAdded, TaskClosed, LeaseIssued, and LeasesExpired implement
// core.Journal, so the store can be attached to a ConcurrentPool with
// SetJournal. They run under the pool's write lock and therefore must not
// block on fsync; the records reach disk with the next answer ack or
// background flush. Write failures go sticky (visible through Err and the
// answer path) since the interface cannot surface them.
func (s *Store) TaskAdded(t *core.Task) {
	_ = s.append(&Event{Type: EvTaskAdded, Task: taskRecord(t)}, false)
}

// TaskClosed implements core.Journal.
func (s *Store) TaskClosed(id core.TaskID) {
	_ = s.append(&Event{Type: EvTaskClosed, TaskID: id}, false)
}

// LeaseIssued implements core.Journal.
func (s *Store) LeaseIssued(l core.Lease) {
	_ = s.append(&Event{Type: EvLeaseIssued, Lease: leaseRecord(l)}, false)
}

// LeasesExpired implements core.Journal.
func (s *Store) LeasesExpired(ls []core.Lease) {
	recs := make([]LeaseRecord, len(ls))
	for i := range ls {
		recs[i] = *leaseRecord(ls[i])
	}
	_ = s.append(&Event{Type: EvLeaseExpired, Leases: recs}, false)
}

// Snapshot publishes the replica as pool.snap and truncates the WAL. It
// holds the store mutex for the duration, so concurrent appends stall
// briefly rather than racing the truncation (a record appended after the
// snapshot image was taken must not be discarded with the pre-snapshot
// log). No-op when nothing was journaled since the last snapshot.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	if s.err != nil {
		return s.err
	}
	if s.seq == s.snapSeq {
		return nil
	}
	snap := buildSnapshot(s.rep, s.repSpent, s.repScreen, s.seq)
	if err := writeSnapshot(s.dir, snap); err != nil {
		s.snapErrs.Inc()
		return err
	}
	if err := s.w.truncate(); err != nil {
		// The snapshot covers every truncated record, so a failed truncate
		// only leaves redundant records behind (replay skips them by Seq);
		// the log keeps growing though, so surface the error.
		s.snapErrs.Inc()
		return err
	}
	s.snapSeq = s.seq
	s.snaps.Inc()
	return nil
}

// flusher batches fsyncs under FsyncInterval.
func (s *Store) flusher() {
	defer s.bg.Done()
	t := time.NewTicker(s.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if s.err == nil && !s.closed {
				if err := s.w.sync(); err != nil {
					s.err = err
				}
			}
			s.mu.Unlock()
		}
	}
}

// snapshotter compacts the WAL on a timer.
func (s *Store) snapshotter() {
	defer s.bg.Done()
	t := time.NewTicker(s.opts.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			_ = s.Snapshot()
		}
	}
}

// Close stops the background goroutines, writes a final snapshot, flushes,
// and closes the WAL. The store refuses appends afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	s.mu.Unlock()
	s.bg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.snapshotLocked()
	if cerr := s.w.close(false); err == nil {
		err = cerr
	}
	return err
}

// Crash simulates kill -9 at the durability boundary, for tests: the WAL
// file descriptor is closed with no flush and no snapshot, and the store
// goes sticky-failed so every later append errors. On-disk state is left
// exactly as a real crash would — whatever write() already reached the
// kernel survives, nothing else does.
func (s *Store) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = fmt.Errorf("durable: store crashed")
	close(s.stop)
	_ = s.w.close(true)
	s.mu.Unlock()
	s.bg.Wait()
}

// Dir returns the data directory the store persists into.
func (s *Store) Dir() string { return s.dir }

// Fsync returns the store's fsync policy.
func (s *Store) Fsync() FsyncPolicy { return s.opts.Fsync }

// RegisterMetrics exposes the store's always-on instruments on a registry:
// WAL append and fsync latency histograms, record/byte/fsync/snapshot
// counters, and the recovery statistics from Open.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterHistogram("crowdkit_wal_append_seconds", s.w.appendLat)
	reg.RegisterHistogram("crowdkit_wal_fsync_seconds", s.w.fsyncLat)
	reg.RegisterCounter("crowdkit_wal_records_total", &s.w.records)
	reg.RegisterCounter("crowdkit_wal_bytes_total", &s.w.bytes)
	reg.RegisterCounter("crowdkit_wal_fsyncs_total", &s.w.fsyncs)
	reg.RegisterCounter("crowdkit_wal_snapshots_total", &s.snaps)
	reg.RegisterCounter("crowdkit_wal_snapshot_errors_total", &s.snapErrs)
	reg.RegisterCounter("crowdkit_recovery_replayed_records_total", &s.replayed)
	reg.RegisterCounter("crowdkit_recovery_skipped_records_total", &s.skipped)
	reg.GaugeFunc("crowdkit_recovery_replay_seconds", func() float64 { return s.replayS })
	reg.GaugeFunc("crowdkit_wal_size_bytes", func() float64 {
		fi, err := os.Stat(filepath.Join(s.dir, walName))
		if err != nil {
			return 0
		}
		return float64(fi.Size())
	})
}
