package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// WAL record framing, fixed-size header then payload:
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][payload]
//
// Appends are sequential under a mutex, so a torn write — the process
// died mid-append, or the OS persisted a prefix — can only sit at the
// tail of the file. readWAL stops at the first record whose header,
// length, or checksum does not verify and reports how many trailing bytes
// to discard; Open then truncates the file there, so the log ends on a
// record boundary again and new appends cannot be corrupted by a stale
// partial suffix.
const (
	walName        = "wal.log"
	frameHeader    = 8
	maxRecordBytes = 16 << 20 // sanity bound: no event comes close
)

// segWALName returns the file name of WAL segment i. Segment 0 keeps the
// historical single-file name, so an unsegmented data directory is just a
// 1-segment layout: old directories open unchanged, and Segments=1 writes
// the same files previous releases did.
func segWALName(i int) string {
	if i == 0 {
		return walName
	}
	return fmt.Sprintf("wal-%03d.log", i)
}

// parseSegWALName reports the segment index a WAL file name refers to.
// Recovery scans the directory with this, so it finds segments from a
// previous layout with a different segment count.
func parseSegWALName(name string) (int, bool) {
	if name == walName {
		return 0, true
	}
	var i int
	if n, err := fmt.Sscanf(name, "wal-%03d.log", &i); n == 1 && err == nil && i >= 0 &&
		name == segWALName(i) {
		return i, true
	}
	return 0, false
}

// FsyncPolicy selects when appended records reach stable storage. Every
// policy writes the record to the file (page cache) before the append
// returns, so an acknowledged answer survives a process crash (kill -9)
// regardless of policy; the policies differ in what survives an operating
// system crash or power loss. See DESIGN.md § Durability for the matrix.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every appended record: an ack implies the
	// record is on stable storage. The strongest and slowest policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval batches fsyncs on a background flusher (every
	// Options.FsyncEvery): at most one flush interval of acked records is
	// exposed to a power loss.
	FsyncInterval
	// FsyncNever leaves flushing entirely to the operating system.
	FsyncNever
)

// String returns the flag-style name of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsync parses a -fsync flag value: "always", "off" (or "none"), or
// a Go duration such as "100ms" selecting interval-batched flushing.
func ParseFsync(s string) (FsyncPolicy, time.Duration, error) {
	switch s {
	case "", "always":
		return FsyncAlways, 0, nil
	case "off", "none", "never":
		return FsyncNever, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("durable: fsync policy %q is not \"always\", \"off\", or a positive duration", s)
	}
	return FsyncInterval, d, nil
}

// walInstruments are the always-on instruments for WAL I/O (obs types are
// lock-free atomics); exposed on a registry via Store.RegisterMetrics.
// With a segmented log, every segment shares one instrument set, so the
// exported series aggregate the whole store exactly as they did with a
// single file.
type walInstruments struct {
	appendLat *obs.Histogram
	fsyncLat  *obs.Histogram
	records   obs.Counter
	bytes     obs.Counter
	fsyncs    obs.Counter
}

func newWALInstruments() *walInstruments {
	return &walInstruments{
		appendLat: obs.NewHistogram(obs.DefIOBuckets...),
		fsyncLat:  obs.NewHistogram(obs.DefIOBuckets...),
	}
}

// wal is the append side of one log file. Callers (the Store) serialize
// record ordering; the internal mutex only keeps the file operations
// themselves coherent so Sync may run concurrently with new appends.
type wal struct {
	mu    sync.Mutex
	f     *os.File
	buf   []byte // scratch frame assembly, reused across appends
	dirty bool   // bytes written since the last fsync

	ins *walInstruments
}

// openWAL opens (creating if needed) the log file for appending, with its
// own instrument set.
func openWAL(path string) (*wal, error) {
	return openWALShared(path, newWALInstruments())
}

// openWALShared opens the log file with a caller-supplied instrument set,
// so multiple segments aggregate into the same series.
func openWALShared(path string, ins *walInstruments) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening WAL: %w", err)
	}
	return &wal{f: f, ins: ins}, nil
}

// append frames payload and writes it in a single write call, so a crash
// tears at most the final record.
func (w *wal) append(payload []byte) error {
	if len(payload) == 0 || len(payload) > maxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes outside (0, %d]", len(payload), maxRecordBytes)
	}
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("durable: append to closed WAL")
	}
	need := frameHeader + len(payload)
	if cap(w.buf) < need {
		w.buf = make([]byte, 0, need*2)
	}
	frame := w.buf[:frameHeader]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("durable: WAL append: %w", err)
	}
	w.dirty = true
	w.ins.records.Inc()
	w.ins.bytes.Add(int64(len(frame)))
	w.ins.appendLat.ObserveDuration(time.Since(start))
	return nil
}

// sync flushes outstanding appends to stable storage (no-op when clean).
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *wal) syncLocked() error {
	if !w.dirty || w.f == nil {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: WAL fsync: %w", err)
	}
	w.dirty = false
	w.ins.fsyncs.Inc()
	w.ins.fsyncLat.ObserveDuration(time.Since(start))
	return nil
}

// truncate discards the log's contents after its records were folded into
// a published snapshot. The store guarantees no append races this call.
func (w *wal) truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: WAL truncate: %w", err)
	}
	// O_APPEND writes position themselves at the (now zero) end of file;
	// make the truncation itself durable so a crash cannot resurrect
	// pre-snapshot records behind the snapshot's back.
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: WAL truncate sync: %w", err)
	}
	w.dirty = false
	return nil
}

// close syncs (unless skipSync) and closes the file.
func (w *wal) close(skipSync bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if !skipSync {
		err = w.syncLocked()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// readWAL reads every valid record from path. It returns the decoded
// payloads, the byte offset at which valid data ends, and the number of
// trailing bytes that belong to a torn or corrupt record (0 when the file
// ends cleanly). A missing file is an empty log.
func readWAL(path string) (payloads [][]byte, validBytes int64, torn int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, fmt.Errorf("durable: reading WAL: %w", err)
	}
	off := 0
	for {
		rest := len(data) - off
		if rest == 0 {
			return payloads, int64(off), 0, nil
		}
		if rest < frameHeader {
			break // torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n == 0 || n > maxRecordBytes || rest < frameHeader+n {
			break // absurd length or torn payload
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt payload
		}
		payloads = append(payloads, payload)
		off += frameHeader + n
	}
	return payloads, int64(off), int64(len(data) - off), nil
}
