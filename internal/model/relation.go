package model

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Column describes one attribute of a relation schema.
type Column struct {
	Name string
	Type Type
	// Crowd marks a CROWD column (CrowdDB-style): its values may be NULL
	// until resolved by crowd workers.
	Crowd bool
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
	// CrowdTable marks the whole relation as crowd-sourced: tuples may be
	// appended by workers (open-world), not just by the machine.
	CrowdTable bool
	byName     map[string]int
}

// NewSchema builds a schema from columns, validating that names are
// non-empty and unique (case-insensitive).
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("model: column %d has empty name", i)
		}
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("model: duplicate column name %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// ColumnIndex returns the index of the named column (case-insensitive) or
// -1 if absent.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// HasCrowdColumns reports whether any column is CROWD-annotated.
func (s *Schema) HasCrowdColumns() bool {
	for _, c := range s.Columns {
		if c.Crowd {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := append([]Column(nil), s.Columns...)
	c := MustSchema(cols...)
	c.CrowdTable = s.CrowdTable
	return c
}

// String renders the schema as "name TYPE [CROWD], ...".
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
		if c.Crowd {
			b.WriteString(" CROWD")
		}
	}
	return b.String()
}

// Tuple is one row of values, positionally aligned with a schema.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports whether two tuples have identical length and values.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is an in-memory table: a schema plus a slice of tuples. It is
// the unit exchanged between the storage layer, the operators, and CQL.
// Relation is not safe for concurrent mutation.
type Relation struct {
	Name   string
	Schema *Schema
	Tuples []Tuple
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Insert appends a tuple after validating its arity and column types
// (NULL is accepted in any column).
func (r *Relation) Insert(t Tuple) error {
	if len(t) != r.Schema.Arity() {
		return fmt.Errorf("model: relation %s: tuple arity %d, schema arity %d",
			r.Name, len(t), r.Schema.Arity())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		want := r.Schema.Columns[i].Type
		if v.Type() != want {
			// Allow INT literals into FLOAT columns.
			if want == TypeFloat && v.Type() == TypeInt {
				t[i] = Float(v.AsFloat())
				continue
			}
			return fmt.Errorf("model: relation %s: column %s expects %v, got %v",
				r.Name, r.Schema.Columns[i].Name, want, v.Type())
		}
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustInsert inserts and panics on error; for tests and generators.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// Get returns the value at row i, column named col. It returns NULL and
// false if the column does not exist or the row is out of range.
func (r *Relation) Get(i int, col string) (Value, bool) {
	ci := r.Schema.ColumnIndex(col)
	if ci < 0 || i < 0 || i >= len(r.Tuples) {
		return Null(), false
	}
	return r.Tuples[i][ci], true
}

// Column returns all values of the named column in row order.
func (r *Relation) Column(col string) ([]Value, error) {
	ci := r.Schema.ColumnIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("model: relation %s has no column %q", r.Name, col)
	}
	out := make([]Value, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t[ci]
	}
	return out, nil
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Schema.Clone())
	c.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}

// SortBy stably sorts tuples by the named columns in order; desc applies
// per column (parallel slice, padded with false).
func (r *Relation) SortBy(cols []string, desc []bool) error {
	idx := make([]int, len(cols))
	for i, c := range cols {
		ci := r.Schema.ColumnIndex(c)
		if ci < 0 {
			return fmt.Errorf("model: sort column %q not in relation %s", c, r.Name)
		}
		idx[i] = ci
	}
	sort.SliceStable(r.Tuples, func(a, b int) bool {
		for i, ci := range idx {
			cmp := r.Tuples[a][ci].Compare(r.Tuples[b][ci])
			if i < len(desc) && desc[i] {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return nil
}

// Project returns a new relation containing only the named columns.
func (r *Relation) Project(cols ...string) (*Relation, error) {
	idx := make([]int, len(cols))
	newCols := make([]Column, len(cols))
	for i, c := range cols {
		ci := r.Schema.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("model: project column %q not in relation %s", c, r.Name)
		}
		idx[i] = ci
		newCols[i] = r.Schema.Columns[ci]
	}
	schema, err := NewSchema(newCols...)
	if err != nil {
		return nil, err
	}
	out := NewRelation(r.Name, schema)
	for _, t := range r.Tuples {
		nt := make(Tuple, len(idx))
		for i, ci := range idx {
			nt[i] = t[ci]
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}

// Filter returns a new relation holding the tuples for which keep returns
// true.
func (r *Relation) Filter(keep func(Tuple) bool) *Relation {
	out := NewRelation(r.Name, r.Schema)
	for _, t := range r.Tuples {
		if keep(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// WriteCSV writes the relation (header row first) to w.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, r.Schema.Arity())
	for i, c := range r.Schema.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("model: writing CSV header: %w", err)
	}
	row := make([]string, r.Schema.Arity())
	for _, t := range r.Tuples {
		for i, v := range t {
			if v.IsNull() {
				row[i] = ""
			} else {
				row[i] = v.String()
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("model: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads tuples from CSV data (with a header row that must match
// the schema's column names in order) into a new relation.
func ReadCSV(name string, schema *Schema, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("model: reading CSV header: %w", err)
	}
	if len(header) != schema.Arity() {
		return nil, fmt.Errorf("model: CSV header arity %d, schema arity %d",
			len(header), schema.Arity())
	}
	for i, h := range header {
		if !strings.EqualFold(h, schema.Columns[i].Name) {
			return nil, fmt.Errorf("model: CSV column %d is %q, schema expects %q",
				i, h, schema.Columns[i].Name)
		}
	}
	rel := NewRelation(name, schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("model: reading CSV row: %w", err)
		}
		t := make(Tuple, schema.Arity())
		for i, field := range rec {
			v, err := ParseValue(field, schema.Columns[i].Type)
			if err != nil {
				return nil, err
			}
			t[i] = v
		}
		if err := rel.Insert(t); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// FormatTable renders the relation as an aligned ASCII table, for CLI and
// experiment output.
func (r *Relation) FormatTable() string {
	widths := make([]int, r.Schema.Arity())
	for i, c := range r.Schema.Columns {
		widths[i] = len(c.Name)
	}
	rows := make([][]string, len(r.Tuples))
	for ri, t := range r.Tuples {
		rows[ri] = make([]string, len(t))
		for i, v := range t {
			s := v.String()
			rows[ri][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	header := make([]string, r.Schema.Arity())
	for i, c := range r.Schema.Columns {
		header[i] = c.Name
	}
	writeRow(header)
	total := 0
	for _, w := range widths {
		total += w + 3
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
