// Package model defines the relational data model shared by the storage
// engine, the crowd operators, and the declarative CQL layer: typed values,
// schemas, tuples, and in-memory relations with CSV import/export.
package model

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the value types supported by crowdkit relations.
type Type int

const (
	// TypeNull is the type of the NULL value (and of CROWD cells that have
	// not yet been resolved by workers).
	TypeNull Type = iota
	// TypeInt is a 64-bit signed integer.
	TypeInt
	// TypeFloat is a 64-bit IEEE float.
	TypeFloat
	// TypeString is a UTF-8 string.
	TypeString
	// TypeBool is a boolean.
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "STRING"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType converts a type name (case-insensitive; accepts common SQL
// aliases) into a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return TypeFloat, nil
	case "STRING", "TEXT", "VARCHAR", "CHAR":
		return TypeString, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	default:
		return TypeNull, fmt.Errorf("model: unknown type %q", s)
	}
}

// Value is a dynamically typed cell value. The zero Value is NULL.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
	b   bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an INT value.
func Int(v int64) Value { return Value{typ: TypeInt, i: v} }

// Float returns a FLOAT value.
func Float(v float64) Value { return Value{typ: TypeFloat, f: v} }

// String_ returns a STRING value. (Named with a trailing underscore to
// avoid colliding with the fmt.Stringer method on Value.)
func String_(v string) Value { return Value{typ: TypeString, s: v} }

// Bool returns a BOOL value.
func Bool(v bool) Value { return Value{typ: TypeBool, b: v} }

// Type returns the value's type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == TypeNull }

// AsInt returns the integer content; it is 0 unless Type is TypeInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric content as float64, converting INT values.
func (v Value) AsFloat() float64 {
	if v.typ == TypeInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string content; it is "" unless Type is TypeString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean content; it is false unless Type is TypeBool.
func (v Value) AsBool() bool { return v.b }

// IsNumeric reports whether the value is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.typ == TypeInt || v.typ == TypeFloat }

// String renders the value for display. NULL renders as "NULL"; strings
// render without quotes.
func (v Value) String() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Equal reports deep equality of two values. NULL equals only NULL (this is
// identity equality used by the engine, not SQL ternary logic — the CQL
// executor handles NULL semantics above this level).
func (v Value) Equal(o Value) bool {
	if v.typ != o.typ {
		// INT and FLOAT compare numerically across types.
		if v.IsNumeric() && o.IsNumeric() {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.typ {
	case TypeNull:
		return true
	case TypeInt:
		return v.i == o.i
	case TypeFloat:
		return v.f == o.f
	case TypeString:
		return v.s == o.s
	case TypeBool:
		return v.b == o.b
	}
	return false
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything; cross-type comparisons order by type rank
// except numeric types, which compare numerically. Returns an error for
// incomparable pairs only when strict is required by callers; here all
// pairs are totally ordered so sorting is always possible.
func (v Value) Compare(o Value) int {
	if v.typ == TypeNull || o.typ == TypeNull {
		switch {
		case v.typ == o.typ:
			return 0
		case v.typ == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.typ != o.typ {
		// Deterministic but arbitrary cross-type ordering by type rank.
		if v.typ < o.typ {
			return -1
		}
		return 1
	}
	switch v.typ {
	case TypeString:
		return strings.Compare(v.s, o.s)
	case TypeBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	}
	return 0
}

// ParseValue parses the literal s as the given type. An empty string parses
// to NULL for every type.
func ParseValue(s string, t Type) (Value, error) {
	if s == "" {
		return Null(), nil
	}
	switch t {
	case TypeInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("model: parsing %q as INT: %w", s, err)
		}
		return Int(i), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Null(), fmt.Errorf("model: parsing %q as FLOAT: %w", s, err)
		}
		return Float(f), nil
	case TypeString:
		return String_(s), nil
	case TypeBool:
		switch strings.ToLower(strings.TrimSpace(s)) {
		case "true", "t", "1", "yes":
			return Bool(true), nil
		case "false", "f", "0", "no":
			return Bool(false), nil
		default:
			return Null(), fmt.Errorf("model: parsing %q as BOOL", s)
		}
	case TypeNull:
		return Null(), nil
	default:
		return Null(), fmt.Errorf("model: unknown target type %v", t)
	}
}
