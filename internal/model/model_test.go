package model

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"int": TypeInt, "INTEGER": TypeInt, "bigint": TypeInt,
		"float": TypeFloat, "DOUBLE": TypeFloat,
		"string": TypeString, "varchar": TypeString, "TEXT": TypeString,
		"bool": TypeBool, "BOOLEAN": TypeBool,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Fatalf("ParseType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Fatal("ParseType(blob) should fail")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(7); v.Type() != TypeInt || v.AsInt() != 7 || v.AsFloat() != 7 {
		t.Fatalf("Int value broken: %+v", v)
	}
	if v := Float(2.5); v.Type() != TypeFloat || v.AsFloat() != 2.5 {
		t.Fatalf("Float value broken: %+v", v)
	}
	if v := String_("x"); v.Type() != TypeString || v.AsString() != "x" {
		t.Fatalf("String value broken: %+v", v)
	}
	if v := Bool(true); v.Type() != TypeBool || !v.AsBool() {
		t.Fatalf("Bool value broken: %+v", v)
	}
	if !Null().IsNull() {
		t.Fatal("Null().IsNull() = false")
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value should be NULL")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Fatal("Int(3) should equal Float(3)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Fatal("Int(3) should not equal Float(3.5)")
	}
	if Int(3).Equal(String_("3")) {
		t.Fatal("Int(3) should not equal String(3)")
	}
	if !Null().Equal(Null()) {
		t.Fatal("NULL should equal NULL under identity semantics")
	}
}

func TestValueCompareOrdering(t *testing.T) {
	if Null().Compare(Int(0)) != -1 {
		t.Fatal("NULL should sort before values")
	}
	if Int(1).Compare(Int(2)) != -1 || Int(2).Compare(Int(1)) != 1 {
		t.Fatal("int compare broken")
	}
	if Int(2).Compare(Float(2)) != 0 {
		t.Fatal("cross-numeric compare broken")
	}
	if String_("a").Compare(String_("b")) != -1 {
		t.Fatal("string compare broken")
	}
	if Bool(false).Compare(Bool(true)) != -1 {
		t.Fatal("bool compare broken")
	}
}

func TestValueCompareTotalOrderProperty(t *testing.T) {
	// Antisymmetry: Compare(a,b) == -Compare(b,a) over a mixed value pool.
	pool := []Value{Null(), Int(-2), Int(5), Float(1.5), Float(5),
		String_(""), String_("z"), Bool(false), Bool(true)}
	for _, a := range pool {
		for _, b := range pool {
			if a.Compare(b) != -b.Compare(a) {
				t.Fatalf("Compare not antisymmetric for %v, %v", a, b)
			}
		}
	}
	// Transitivity spot check via sortedness of pairwise relations.
	for _, a := range pool {
		for _, b := range pool {
			for _, c := range pool {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Fatalf("Compare not transitive: %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	err := quick.Check(func(i int64) bool {
		v, err := ParseValue(Int(i).String(), TypeInt)
		return err == nil && v.AsInt() == i
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseValue("", TypeInt)
	if err != nil || !v.IsNull() {
		t.Fatalf("empty string should parse to NULL: %v, %v", v, err)
	}
	if _, err := ParseValue("abc", TypeInt); err == nil {
		t.Fatal("ParseValue(abc, INT) should fail")
	}
	b, err := ParseValue("yes", TypeBool)
	if err != nil || !b.AsBool() {
		t.Fatalf("ParseValue(yes, BOOL) = %v, %v", b, err)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a", Type: TypeInt}, Column{Name: "A", Type: TypeInt}); err == nil {
		t.Fatal("duplicate column names (case-insensitive) should fail")
	}
	if _, err := NewSchema(Column{Name: "", Type: TypeInt}); err == nil {
		t.Fatal("empty column name should fail")
	}
	s := MustSchema(Column{Name: "id", Type: TypeInt}, Column{Name: "name", Type: TypeString})
	if s.ColumnIndex("ID") != 0 || s.ColumnIndex("Name") != 1 || s.ColumnIndex("zzz") != -1 {
		t.Fatal("ColumnIndex lookup broken")
	}
	if s.Arity() != 2 {
		t.Fatalf("Arity = %d", s.Arity())
	}
}

func TestSchemaCrowdFlags(t *testing.T) {
	s := MustSchema(
		Column{Name: "id", Type: TypeInt},
		Column{Name: "phone", Type: TypeString, Crowd: true},
	)
	if !s.HasCrowdColumns() {
		t.Fatal("HasCrowdColumns should be true")
	}
	c := s.Clone()
	if !c.HasCrowdColumns() || c.ColumnIndex("phone") != 1 {
		t.Fatal("Clone lost crowd column info")
	}
	if !strings.Contains(s.String(), "CROWD") {
		t.Fatalf("schema string missing CROWD: %s", s)
	}
}

func testRelation(t *testing.T) *Relation {
	t.Helper()
	s := MustSchema(
		Column{Name: "id", Type: TypeInt},
		Column{Name: "name", Type: TypeString},
		Column{Name: "score", Type: TypeFloat},
	)
	r := NewRelation("people", s)
	r.MustInsert(Tuple{Int(2), String_("bob"), Float(1.5)})
	r.MustInsert(Tuple{Int(1), String_("ann"), Float(2.5)})
	r.MustInsert(Tuple{Int(3), String_("cid"), Null()})
	return r
}

func TestRelationInsertValidation(t *testing.T) {
	r := testRelation(t)
	if err := r.Insert(Tuple{Int(4)}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if err := r.Insert(Tuple{String_("x"), String_("y"), Float(0)}); err == nil {
		t.Fatal("type mismatch should fail")
	}
	// INT coerces into FLOAT columns.
	if err := r.Insert(Tuple{Int(4), String_("dee"), Int(3)}); err != nil {
		t.Fatalf("INT into FLOAT column should coerce: %v", err)
	}
	if v, _ := r.Get(3, "score"); v.Type() != TypeFloat || v.AsFloat() != 3 {
		t.Fatalf("coerced value wrong: %v", v)
	}
}

func TestRelationGetAndColumn(t *testing.T) {
	r := testRelation(t)
	v, ok := r.Get(0, "name")
	if !ok || v.AsString() != "bob" {
		t.Fatalf("Get(0, name) = %v, %v", v, ok)
	}
	if _, ok := r.Get(0, "nope"); ok {
		t.Fatal("Get on missing column should report false")
	}
	if _, ok := r.Get(99, "name"); ok {
		t.Fatal("Get out of range should report false")
	}
	col, err := r.Column("id")
	if err != nil || len(col) != 3 || col[0].AsInt() != 2 {
		t.Fatalf("Column(id) = %v, %v", col, err)
	}
	if _, err := r.Column("nope"); err == nil {
		t.Fatal("Column on missing name should fail")
	}
}

func TestRelationSortBy(t *testing.T) {
	r := testRelation(t)
	if err := r.SortBy([]string{"id"}, nil); err != nil {
		t.Fatal(err)
	}
	ids := []int64{r.Tuples[0][0].AsInt(), r.Tuples[1][0].AsInt(), r.Tuples[2][0].AsInt()}
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("ascending sort wrong: %v", ids)
	}
	if err := r.SortBy([]string{"id"}, []bool{true}); err != nil {
		t.Fatal(err)
	}
	if r.Tuples[0][0].AsInt() != 3 {
		t.Fatalf("descending sort wrong: %v", r.Tuples)
	}
	// NULL sorts first ascending.
	if err := r.SortBy([]string{"score"}, nil); err != nil {
		t.Fatal(err)
	}
	if !r.Tuples[0][2].IsNull() {
		t.Fatal("NULL should sort first")
	}
	if err := r.SortBy([]string{"missing"}, nil); err == nil {
		t.Fatal("sorting on missing column should fail")
	}
}

func TestRelationProjectFilter(t *testing.T) {
	r := testRelation(t)
	p, err := r.Project("name", "id")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.Arity() != 2 || p.Schema.Columns[0].Name != "name" {
		t.Fatalf("projection schema wrong: %v", p.Schema)
	}
	if p.Tuples[0][0].AsString() != "bob" || p.Tuples[0][1].AsInt() != 2 {
		t.Fatalf("projection row wrong: %v", p.Tuples[0])
	}
	if _, err := r.Project("ghost"); err == nil {
		t.Fatal("projecting missing column should fail")
	}

	f := r.Filter(func(tp Tuple) bool { return tp[0].AsInt() >= 2 })
	if f.Len() != 2 {
		t.Fatalf("Filter kept %d rows, want 2", f.Len())
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := testRelation(t)
	c := r.Clone()
	c.Tuples[0][1] = String_("mutated")
	if v, _ := r.Get(0, "name"); v.AsString() != "bob" {
		t.Fatal("Clone shares tuple storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := testRelation(t)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("people", r.Schema, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", back.Len(), r.Len())
	}
	for i := range r.Tuples {
		if !back.Tuples[i].Equal(r.Tuples[i]) {
			t.Fatalf("row %d mismatch: %v vs %v", i, back.Tuples[i], r.Tuples[i])
		}
	}
}

func TestReadCSVHeaderMismatch(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: TypeInt})
	if _, err := ReadCSV("x", s, strings.NewReader("wrong\n1\n")); err == nil {
		t.Fatal("header name mismatch should fail")
	}
	if _, err := ReadCSV("x", s, strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("header arity mismatch should fail")
	}
	if _, err := ReadCSV("x", s, strings.NewReader("a\nnot-an-int\n")); err == nil {
		t.Fatal("bad cell should fail")
	}
}

func TestTupleEqualAndClone(t *testing.T) {
	a := Tuple{Int(1), String_("x")}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should be equal")
	}
	b[0] = Int(2)
	if a.Equal(b) || a[0].AsInt() != 1 {
		t.Fatal("clone should be independent")
	}
	if a.Equal(Tuple{Int(1)}) {
		t.Fatal("different arity tuples should not be equal")
	}
}

func TestFormatTableContainsData(t *testing.T) {
	r := testRelation(t)
	s := r.FormatTable()
	for _, want := range []string{"id", "name", "score", "bob", "NULL"} {
		if !strings.Contains(s, want) {
			t.Fatalf("FormatTable missing %q:\n%s", want, s)
		}
	}
}

func TestCSVRoundTripAdversarialStrings(t *testing.T) {
	s := MustSchema(
		Column{Name: "id", Type: TypeInt},
		Column{Name: "text", Type: TypeString},
	)
	tricky := []string{
		`comma, inside`, `"quoted"`, "new\nline", `both, "things"`,
		`trailing space `, `	tab`, `unicode: héllo, 世界`, `''`,
	}
	r := NewRelation("tricky", s)
	for i, v := range tricky {
		r.MustInsert(Tuple{Int(int64(i)), String_(v)})
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("tricky", s, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(tricky) {
		t.Fatalf("rows = %d", back.Len())
	}
	for i, v := range tricky {
		got, _ := back.Get(i, "text")
		if got.AsString() != v {
			t.Fatalf("row %d: %q round-tripped to %q", i, v, got.AsString())
		}
	}
}

func TestCSVRoundTripRandomRelations(t *testing.T) {
	err := quick.Check(func(ids []int64, names []string) bool {
		n := len(ids)
		if len(names) < n {
			n = len(names)
		}
		if n > 30 {
			n = 30
		}
		s := MustSchema(
			Column{Name: "id", Type: TypeInt},
			Column{Name: "name", Type: TypeString},
		)
		r := NewRelation("rand", s)
		for i := 0; i < n; i++ {
			// Empty strings decode as NULL by design; skip them so the
			// property stays exact (NULL round-trip is covered elsewhere).
			name := names[i]
			if name == "" {
				name = "_"
			}
			r.MustInsert(Tuple{Int(ids[i]), String_(name)})
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV("rand", s, bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if back.Len() != r.Len() {
			return false
		}
		for i := range r.Tuples {
			if !back.Tuples[i].Equal(r.Tuples[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
