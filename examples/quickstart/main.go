// Quickstart: publish labeling microtasks to a simulated crowd, collect
// redundant answers, and infer the truth — the minimal end-to-end loop of
// crowdsourced data management.
package main

import (
	"fmt"
	"log"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/stats"
	"repro/internal/truth"
)

func main() {
	rng := stats.NewRNG(42)

	// 1. Define tasks. Each asks whether a review is positive; the planted
	// GroundTruth drives the simulated workers (real crowds replace this).
	pool := core.NewPool()
	questions := []struct {
		text  string
		truth int // 0 = negative, 1 = positive
		diff  float64
	}{
		{"'Absolutely loved it, would buy again!'", 1, 0.05},
		{"'Terrible. Broke after one day.'", 0, 0.05},
		{"'It is fine I guess, does the job.'", 1, 0.7},
		{"'Not what I expected at all.'", 0, 0.5},
		{"'Best purchase this year.'", 1, 0.1},
		{"'Meh.'", 0, 0.9},
	}
	for i, q := range questions {
		pool.MustAdd(&core.Task{
			ID:          core.TaskID(i + 1),
			Kind:        core.SingleChoice,
			Question:    "Is this review positive? " + q.text,
			Options:     []string{"negative", "positive"},
			GroundTruth: q.truth,
			Difficulty:  q.diff,
		})
	}

	// 2. Simulate a mixed-quality crowd (some experts, some spammers).
	workers := crowd.NewPopulation(rng, 25, crowd.RegimeMixed)

	// 3. Collect 5 answers per task, balancing progress across tasks.
	platform := core.NewPlatform(pool, crowd.AsCoreWorkers(workers), core.Unlimited())
	run, err := platform.CollectRedundant(assign.FewestAnswers{}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d answers over %d rounds (simulated %.0fs)\n\n",
		run.AnswersCollected, run.Rounds, run.Makespan)

	// 4. Infer the truth with majority voting and with Dawid–Skene EM.
	ds, err := truth.FromPool(pool, pool.TaskIDs())
	if err != nil {
		log.Fatal(err)
	}
	for _, inf := range []truth.Inferrer{truth.MajorityVote{}, truth.DawidSkene{}} {
		res, err := inf.Infer(ds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: accuracy %.2f\n", inf.Name(), truth.Accuracy(res, pool, ds))
		for _, id := range pool.TaskIDs() {
			t := pool.Task(id)
			fmt.Printf("  %-55s -> %-8s (confidence %.2f)\n",
				t.Question, t.Options[res.Labels[id]], res.Confidence(id))
		}
		fmt.Println()
	}
}
