// Entity resolution: deduplicate a noisy product catalog with the
// CrowdER-style pipeline — machine similarity pruning, crowd verification
// of candidate pairs (most similar first), and transitivity deduction.
//
// The example compares the naive all-pairs approach against the full
// pipeline and reports cost and quality against the planted truth.
package main

import (
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/internal/crowd"
	"repro/internal/datagen"
	"repro/internal/operators"
	"repro/internal/stats"
)

func main() {
	rng := stats.NewRNG(7)

	// A catalog of 80 entities, ~2.2 noisy records each.
	data, err := datagen.NewERDataset(rng, datagen.ERConfig{
		Entities: 80, DupMean: 2.2, Noise: 0.35,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := len(data.Records)
	fmt.Printf("catalog: %d records over %d entities (%d pairs total)\n\n",
		n, data.NumEntities, n*(n-1)/2)
	fmt.Println("sample records:")
	for i := 0; i < 4; i++ {
		fmt.Printf("  %q (entity %d)\n", data.Records[i], data.Entity[i])
	}
	fmt.Println()

	truePairs := make([]cost.Pair, 0)
	for _, p := range data.TruePairs() {
		truePairs = append(truePairs, cost.Pair{I: p.I, J: p.J})
	}

	configs := []struct {
		name string
		cfg  operators.JoinConfig
	}{
		{"all-pairs (no machine help)", operators.JoinConfig{PruneLow: 0, AutoHigh: 2, Redundancy: 3}},
		{"pruned at 0.3", operators.JoinConfig{PruneLow: 0.3, AutoHigh: 2, Redundancy: 3}},
		{"pruned + transitivity", operators.JoinConfig{PruneLow: 0.3, AutoHigh: 2, Redundancy: 3, UseTransitivity: true}},
	}
	for _, c := range configs {
		// Fresh crowd per run so strategies are compared fairly.
		crng := stats.NewRNG(99)
		ws := crowd.NewPopulation(crng, 50, crowd.RegimeReliable)
		runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, crng.Split())

		res, err := operators.Join(runner, data.Records, c.cfg,
			func(i int) int { return data.Entity[i] })
		if err != nil {
			log.Fatal(err)
		}
		prf := cost.EvaluatePairs(res.Matches, truePairs, true)
		fmt.Printf("%-28s asked %5d pairs (%6d votes), deduced %4d, pruned %5d  =>  P %.3f  R %.3f  F1 %.3f\n",
			c.name, res.AskedPairs, res.VotesUsed, res.DeducedPairs, res.Pruned,
			prf.Precision, prf.Recall, prf.F1)
	}
}
