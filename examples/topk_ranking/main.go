// Top-k ranking: find the best photos by crowd judgment, comparing the
// pairwise-comparison, tournament, rating, and hybrid strategies on cost
// and quality.
package main

import (
	"fmt"
	"log"

	"repro/internal/crowd"
	"repro/internal/datagen"
	"repro/internal/operators"
	"repro/internal/stats"
)

// photoOracle adapts the planted latent scores to the operators'
// CompareOracle interface: closer scores mean harder comparisons.
type photoOracle struct{ d *datagen.RankingDataset }

func (o photoOracle) Truth(i, j int) (bool, float64) {
	return o.d.Better(i, j), o.d.PairDifficulty(i, j)
}

func (o photoOracle) Label(i int) string { return o.d.Items[i] }

func main() {
	rng := stats.NewRNG(11)
	const n = 40

	data, err := datagen.NewRankingDataset(rng, n)
	if err != nil {
		log.Fatal(err)
	}
	oracle := photoOracle{data}
	actual := data.TrueRanking()
	fmt.Printf("ranking %d photos; true best is %s (score %.2f)\n\n",
		n, data.Items[actual[0]], data.Scores[actual[0]])

	newRunner := func() *operators.Runner {
		crng := stats.NewRNG(23)
		ws := crowd.NewPopulation(crng, 60, crowd.RegimeMixed)
		return operators.NewRunner(crowd.AsCoreWorkers(ws), nil, crng.Split())
	}

	// Strategy 1: tournament max — O(n) comparisons, finds just the best.
	r := newRunner()
	mx, err := operators.MaxTournament(r, n, oracle, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tournament-max: winner %-9s  %4d votes  (true best: %v)\n",
		data.Items[mx.Winner], mx.VotesUsed, mx.Winner == actual[0])

	// Strategy 2: full pairwise sort — quality ceiling, quadratic cost.
	r = newRunner()
	ap, err := operators.AllPairsSort(r, n, oracle, 3)
	if err != nil {
		log.Fatal(err)
	}
	tau, _ := operators.KendallTau(ap.Ranking, actual)
	fmt.Printf("all-pairs sort: tau %.3f          %4d votes  P@5 %.2f\n",
		tau, ap.VotesUsed, operators.PrecisionAtK(ap.Ranking, actual, 5))

	// Strategy 3: ratings only — linear cost, coarser.
	r = newRunner()
	rt, err := operators.RatingSort(r, n, oracle,
		func(i int) float64 { return data.Scores[i] }, 3)
	if err != nil {
		log.Fatal(err)
	}
	tau, _ = operators.KendallTau(rt.Ranking, actual)
	fmt.Printf("rating sort:    tau %.3f          %4d votes  P@5 %.2f\n",
		tau, rt.VotesUsed, operators.PrecisionAtK(rt.Ranking, actual, 5))

	// Strategy 4: hybrid — cheap ratings everywhere, comparisons on the
	// contending head.
	r = newRunner()
	hy, err := operators.HybridSort(r, n, oracle,
		func(i int) float64 { return data.Scores[i] }, 3, 3, 10)
	if err != nil {
		log.Fatal(err)
	}
	tau, _ = operators.KendallTau(hy.Ranking, actual)
	fmt.Printf("hybrid sort:    tau %.3f          %4d votes  P@5 %.2f\n",
		tau, hy.VotesUsed, operators.PrecisionAtK(hy.Ranking, actual, 5))

	// Strategy 5: top-3 by repeated tournaments.
	r = newRunner()
	tk, err := operators.TopK(r, n, 3, oracle, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-3 by tournament (%d votes):\n", tk.VotesUsed)
	for rank, item := range tk.Ranking {
		fmt.Printf("  %d. %s (true rank %d)\n", rank+1, data.Items[item], trueRankOf(actual, item)+1)
	}
}

func trueRankOf(actual []int, item int) int {
	for r, it := range actual {
		if it == item {
			return r
		}
	}
	return -1
}
