// Truth inference: compare majority voting against worker-model EM
// methods as the crowd degrades from reliable to spam-heavy, and show how
// the models separate good workers from spammers.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/stats"
	"repro/internal/truth"
)

func main() {
	fmt.Println("regime    method      accuracy")
	fmt.Println("--------------------------------")
	for _, regime := range []string{"reliable", "mixed", "spammy"} {
		mix, err := crowd.RegimeByName(regime)
		if err != nil {
			log.Fatal(err)
		}
		rng := stats.NewRNG(21)
		pool := core.NewPool()
		for i := 0; i < 400; i++ {
			pool.MustAdd(&core.Task{
				ID: core.TaskID(i + 1), Kind: core.SingleChoice,
				Options:     []string{"no", "yes"},
				GroundTruth: rng.Intn(2),
				Difficulty:  rng.Beta(2, 5),
			})
		}
		ws := crowd.NewPopulation(rng, 35, mix)
		pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.Unlimited())
		if _, err := pl.CollectRedundant(assign.FewestAnswers{}, 5); err != nil {
			log.Fatal(err)
		}
		ds, err := truth.FromPool(pool, pool.TaskIDs())
		if err != nil {
			log.Fatal(err)
		}
		for _, inf := range []truth.Inferrer{
			truth.MajorityVote{}, truth.OneCoinEM{}, truth.DawidSkene{}, truth.GLAD{},
		} {
			res, err := inf.Infer(ds)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s %-11s %.3f\n", regime, inf.Name(), truth.Accuracy(res, pool, ds))
		}

		if regime == "spammy" {
			// Show the worker-quality separation OneCoinEM achieves.
			res, err := truth.OneCoinEM{}.Infer(ds)
			if err != nil {
				log.Fatal(err)
			}
			type wq struct {
				name    string
				est     float64
				behave  crowd.Behavior
				ability float64
			}
			var list []wq
			for _, w := range ws {
				if q, ok := res.WorkerQuality[w.Name]; ok {
					list = append(list, wq{w.Name, q, w.Behave, w.Ability})
				}
			}
			sort.Slice(list, func(i, j int) bool { return list[i].est > list[j].est })
			fmt.Println("\nspammy-regime worker quality as estimated by OneCoinEM:")
			fmt.Println("  worker  est.quality  actual-behavior")
			for i, w := range list {
				if i >= 5 && i < len(list)-5 {
					if i == 5 {
						fmt.Println("  ...")
					}
					continue
				}
				fmt.Printf("  %-7s %10.3f  %v (ability %.1f)\n", w.name, w.est, w.behave, w.ability)
			}
			fmt.Println()
		}
	}
}
