// Data collection: crowdsource an open-world enumeration ("name a local
// coffee shop") where each worker knows only part of the domain, and use
// the Chao92 species estimator to judge when the collection is complete.
package main

import (
	"fmt"
	"log"

	"repro/internal/crowd"
	"repro/internal/datagen"
	"repro/internal/operators"
	"repro/internal/stats"
)

func main() {
	rng := stats.NewRNG(5)
	const domainSize = 120

	// The true domain (unknown to the requester!) and a crowd whose
	// members each know a Zipf-skewed subset: popular items are known to
	// many workers, tail items to few.
	domain := datagen.CollectionDomain(domainSize)
	workers := crowd.NewPopulation(rng, 60, crowd.RegimeReliable)
	crowd.AssignKnowledge(rng, workers, domainSize, 18, 1.1)
	runner := operators.NewRunner(crowd.AsCoreWorkers(workers), nil, rng.Split())

	res, err := operators.Collect(runner, "Name a coffee shop in town",
		&crowd.CollectionDomain{Items: domain}, 900)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("true domain size (hidden from requester): %d\n\n", domainSize)
	fmt.Println("answers  distinct  chao92-estimate  coverage")
	for _, checkpoint := range []int{50, 100, 200, 400, 900} {
		prefix := make(map[string]int)
		for _, v := range res.Sequence[:checkpoint] {
			if v != "" {
				prefix[v]++
			}
		}
		distinct := res.CoverageCurve[checkpoint-1]
		est := operators.Chao92(prefix)
		fmt.Printf("%7d  %8d  %15.1f  %7.0f%%\n",
			checkpoint, distinct, est, 100*float64(distinct)/float64(domainSize))
	}

	fmt.Printf("\nfinal: %d distinct items from %d answers; Chao92 estimates %.0f items exist\n",
		len(res.Distinct), res.AnswersUsed, res.ChaoEstimate)
	fmt.Println("decision rule: stop collecting when distinct/Chao92 approaches 1")
}
