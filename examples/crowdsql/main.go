// CrowdSQL: drive the declarative CQL layer from Go — CROWD columns that
// workers fill on demand, crowd-evaluated predicates, crowd joins, crowd
// ordering, and the crowd-aware optimizer.
package main

import (
	"fmt"
	"log"

	"repro/internal/cql"
	"repro/internal/crowd"
	"repro/internal/model"
	"repro/internal/operators"
	"repro/internal/stats"
)

func main() {
	rng := stats.NewRNG(3)
	workers := crowd.NewPopulation(rng, 50, crowd.RegimeReliable)
	runner := operators.NewRunner(crowd.AsCoreWorkers(workers), nil, rng)
	session := cql.NewSession(cql.NewCatalog(), runner, rng.Split())

	// Planted "real world": the knowledge human workers would have.
	phoneOf := map[string]string{
		"Blue Bottle": "555-0101", "Ritual Roast": "555-0I02", // note: workers make typos too
		"Drip City": "555-0103", "Bean There": "555-0104",
	}
	session.Oracle = &cql.SimOracle{
		Fill: func(table, column string, row model.Tuple, schema *model.Schema) (string, bool) {
			name := row[schema.ColumnIndex("name")].AsString()
			v, ok := phoneOf[name]
			return v, ok
		},
		// "Same place?" judgments for the crowd join.
		Equal: func(a, b string) bool {
			canon := map[string]string{
				"Blue Bottle": "bb", "blue bottle coffee": "bb",
				"Ritual Roast": "rr", "ritual coffee roasters": "rr",
				"Drip City": "dc", "drip city cafe": "dc",
				"Bean There": "bt",
			}
			return canon[a] != "" && canon[a] == canon[b]
		},
	}

	mustExec := func(q string) *model.Relation {
		rel, err := session.Execute(q)
		if err != nil {
			log.Fatalf("%s\n  %v", q, err)
		}
		return rel
	}

	// Schema: phone is a CROWD column — NULLs are resolved by workers at
	// query time and memoized.
	mustExec(`CREATE TABLE shops (id INT, name STRING, rating INT, phone STRING CROWD)`)
	mustExec(`INSERT INTO shops VALUES
		(1, 'Blue Bottle', 88, NULL),
		(2, 'Ritual Roast', 92, NULL),
		(3, 'Drip City', 75, NULL),
		(4, 'Bean There', 60, NULL)`)
	mustExec(`CREATE TABLE reviews (place STRING, stars INT)`)
	mustExec(`INSERT INTO reviews VALUES
		('blue bottle coffee', 5), ('ritual coffee roasters', 4),
		('drip city cafe', 3), ('unrelated diner', 2)`)

	fmt.Println("-- EXPLAIN shows the crowd-aware plan (machine filter below the fill):")
	fmt.Print(mustExec(`EXPLAIN SELECT name, phone FROM shops WHERE rating > 80`).FormatTable())

	fmt.Println("\n-- Crowd fill: phones are acquired only for rows passing the machine filter:")
	fmt.Print(mustExec(`SELECT name, phone FROM shops WHERE rating > 80 ORDER BY name`).FormatTable())
	fmt.Printf("(crowd answers so far: %d)\n", session.Stats.CrowdAnswers)

	fmt.Println("\n-- Crowd join: match shops to reviews despite name variations:")
	fmt.Print(mustExec(`SELECT name, stars FROM shops CROWDJOIN reviews ON shops.name ~= reviews.place ORDER BY stars DESC`).FormatTable())

	fmt.Println("\n-- Crowd order: have workers rank shops by perceived quality:")
	fmt.Print(mustExec(`SELECT name FROM shops CROWDORDER BY rating DESC`).FormatTable())

	fmt.Printf("\ntotal crowd usage: %d tasks, %d answers, %d fills, %d join pairs, %d comparisons\n",
		session.Stats.CrowdTasks, session.Stats.CrowdAnswers, session.Stats.Fills,
		session.Stats.CrowdJoinPairs, session.Stats.CrowdCompares)
}
