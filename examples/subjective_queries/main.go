// Subjective queries: operators whose answers exist only in human
// judgment — the crowd-powered skyline (Pareto set over subjective
// dimensions) and crowd schema matching between two differently-worded
// data sources.
package main

import (
	"fmt"
	"log"

	"repro/internal/crowd"
	"repro/internal/operators"
	"repro/internal/stats"
)

// hotelOracle plants subjective per-dimension preferences for hotels:
// comfort and location scores that only "humans" know.
type hotelOracle struct {
	names    []string
	comfort  []float64
	location []float64
}

func (o hotelOracle) Dimensions() int { return 2 }

func (o hotelOracle) DimBetter(d, i, j int) (bool, float64) {
	var vi, vj float64
	if d == 0 {
		vi, vj = o.comfort[i], o.comfort[j]
	} else {
		vi, vj = o.location[i], o.location[j]
	}
	gap := vi - vj
	if gap < 0 {
		gap = -gap
	}
	diff := 1 - gap/5
	if diff < 0 {
		diff = 0
	}
	return vi > vj, diff
}

func (o hotelOracle) Label(i int) string { return o.names[i] }

func (o hotelOracle) DimName(d int) string {
	return []string{"comfort", "location"}[d]
}

func main() {
	rng := stats.NewRNG(9)
	workers := crowd.NewPopulation(rng, 50, crowd.RegimeReliable)
	runner := operators.NewRunner(crowd.AsCoreWorkers(workers), nil, rng.Split())

	// --- Crowd skyline: which hotels are not dominated on (comfort, location)?
	oracle := hotelOracle{
		names:    []string{"Grandview", "Plaza", "BudgetInn", "Lakeside", "Midtown", "Suburbia"},
		comfort:  []float64{9, 7, 2, 8, 5, 3},
		location: []float64{3, 8, 9, 6, 7, 2},
	}
	sky, err := operators.Skyline(runner, len(oracle.names), oracle, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("crowd skyline over (comfort, location):")
	for _, i := range sky.Skyline {
		fmt.Printf("  %-10s comfort %.0f, location %.0f\n",
			oracle.names[i], oracle.comfort[i], oracle.location[i])
	}
	fmt.Printf("(%d comparisons, %d votes; Suburbia and Midtown are dominated)\n\n",
		sky.Comparisons, sky.VotesUsed)

	// --- Crowd schema matching: align two booking systems' schemas.
	left := []operators.Attribute{
		{Name: "guest_name", Example: "Ann Smith"},
		{Name: "checkin", Example: "2026-07-01"},
		{Name: "room_rate", Example: "189.00"},
		{Name: "loyalty_no", Example: "LX-2231"},
	}
	right := []operators.Attribute{
		{Name: "price_per_night", Example: "205.50"},
		{Name: "arrival_date", Example: "01/07/2026"},
		{Name: "customer", Example: "Bob Jones"},
		{Name: "breakfast_included", Example: "yes"},
	}
	truth := map[int]int{0: 2, 1: 1, 2: 0} // loyalty_no has no counterpart
	// Numeric attributes share no text at all, so disable pruning: with
	// 4x4 = 16 pairs the crowd can afford to check them all.
	res, err := operators.SchemaMatch(runner, left, right, operators.SchemaMatchConfig{
		Redundancy: 5, PruneLow: -1,
	}, func(l, r int) bool { return truth[l] == r && (l != 3) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("crowd schema matching:")
	for l, r := range res.Mapping {
		fmt.Printf("  %-12s  <->  %s\n", left[l].Name, right[r].Name)
	}
	fmt.Printf("(%d pairs asked, %d pruned by similarity, %d votes)\n",
		res.PairsAsked, res.Pruned, res.VotesUsed)
}
